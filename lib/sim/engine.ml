(* Discrete-event engine on a hierarchical timer wheel.

   The event queue is tuned for the periodic-timer-heavy workloads of the
   FARM simulations (polls, heartbeats, checkpoints): most events are
   re-arms of existing timers a few milliseconds in the future.  A single
   binary heap makes every such re-arm O(log n) in the *total* event count
   and allocates a fresh closure plus heap entry per tick.  Instead we
   keep:

   - a 5-level hashed timer wheel (32 slots per level, 0.1 ms ticks) of
     intrusively linked {e cells}; inserting or re-arming a cell is O(1)
     amortized and allocation-free,
   - a small {e ready} cell-heap holding only the cells of the tick the
     cursor is standing on, which restores the exact [(time, seq)]
     dispatch order inside a tick,
   - an {e overflow} cell-heap for events beyond the wheel horizon
     (~56 min at the default geometry), refilled when the cursor reaches
     them, and
   - a freelist of one-shot cells so steady-state [schedule] calls do not
     allocate either.

   Dispatch order is exactly the lexicographic [(time, seq)] order of the
   seed binary-heap engine — [seq] is a global per-push counter — so all
   replay/determinism invariants (chaos I1-I5, byte-identical digests)
   hold bit-for-bit; [test/test_sim.ml] checks equivalence against a
   heap-backed reference on randomized schedules. *)

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)
(* ------------------------------------------------------------------ *)

let tick_bits = 5
let wheel_slots = 1 lsl tick_bits (* 32 *)
let levels = 5

(* 0.1 ms ticks: finer than every poll/heartbeat period in the tree, and
   the top level still spans 32^5 ticks = ~56 simulated minutes before
   the overflow heap takes over. *)
let tick_inv = 1e4

(* clamp for absurdly late events so [int_of_float] stays defined *)
let max_tick = 1 lsl 50

let tick_of_time time =
  let x = time *. tick_inv in
  if x >= 1.125e15 then max_tick else if x <= 0. then 0 else int_of_float x

(* index of the lowest set bit of a 32-bit word (De Bruijn multiply) *)
let debruijn = 0x077CB531

let tz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13;
     23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz w = tz_table.((((w land -w) * debruijn) land 0xFFFFFFFF) lsr 27)

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable clock : float;
  root_rng : Rng.t;
  mutable dispatched : int;
  mutable pending : int;
  mutable next_seq : int;
  (* wheel *)
  mutable cur : int;                   (* tick the cursor stands on *)
  slots : cell array array;            (* levels x wheel_slots list heads *)
  bitmaps : int array;                 (* per-level slot occupancy *)
  ready : cheap;                       (* cells of the current tick *)
  overflow : cheap;                    (* beyond the wheel horizon *)
  nil : cell;                          (* per-engine list terminator *)
  mutable free : cell;                 (* one-shot cell freelist *)
  mutable free_len : int;
  (* observability: a per-engine trace sink (None = tracing disabled,
     one branch per dispatch) and the named-metric registry components
     publish into.  Per-engine — never global — so parallel sweeps stay
     deterministic and isolated. *)
  mutable tracer : Trace.t option;
  (* interned ids for the per-dispatch instant, refreshed by
     [set_tracer]; only read when [tracer] is [Some _] *)
  mutable tr_cat : int;
  mutable tr_name : int;
  mutable tr_seq : int;
  metrics : Metrics.Registry.t;
}

(* A queued event.  Periodic timers *are* their cell: re-arming just
   refreshes [time]/[seq] and relinks, so steady-state ticking allocates
   nothing.  One-shots recycle through the freelist. *)
and cell = {
  mutable time : float;
  mutable seq : int;
  mutable cb : t -> unit;
  mutable period : float;              (* 0. = one-shot *)
  mutable cancelled : bool;
  mutable next : cell;                 (* intrusive slot list; nil-ended *)
}

(* Min-heap of cells on (time, seq): the FIFO tie-break inside a tick.
   Vacated slots are reset to [nil] so popped cells (and the closures
   they capture) never outlive their dispatch. *)
and cheap = { mutable a : cell array; mutable n : int; hnil : cell }

let cell_lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

let cheap_create nil = { a = [||]; n = 0; hnil = nil }

let cheap_push h c =
  if h.n = Array.length h.a then begin
    let cap = Stdlib.max 16 (2 * h.n) in
    let a = Array.make cap h.hnil in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end;
  h.a.(h.n) <- c;
  h.n <- h.n + 1;
  let i = ref (h.n - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    cell_lt h.a.(!i) h.a.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.a.(!i) in
    h.a.(!i) <- h.a.(p);
    h.a.(p) <- tmp;
    i := p
  done

(* remove and return the root; the caller has already read it *)
let cheap_pop h =
  let top = h.a.(0) in
  h.n <- h.n - 1;
  if h.n > 0 then begin
    h.a.(0) <- h.a.(h.n);
    h.a.(h.n) <- h.hnil;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && cell_lt h.a.(l) h.a.(!m) then m := l;
      if r < h.n && cell_lt h.a.(r) h.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = h.a.(!i) in
        h.a.(!i) <- h.a.(!m);
        h.a.(!m) <- tmp;
        i := !m
      end
    done
  end
  else h.a.(0) <- h.hnil;
  let cap = Array.length h.a in
  if cap > 64 && h.n * 4 < cap then begin
    let a = Array.make (Stdlib.max 16 (2 * h.n)) h.hnil in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end;
  top

(* ------------------------------------------------------------------ *)
(* Engine construction                                                 *)
(* ------------------------------------------------------------------ *)

let noop (_ : t) = ()

let create ?(seed = 42) () =
  let rec nil =
    { time = 0.; seq = 0; cb = noop; period = 0.; cancelled = true;
      next = nil }
  in
  { clock = 0.; root_rng = Rng.create seed; dispatched = 0; pending = 0;
    next_seq = 0; cur = 0;
    slots = Array.init levels (fun _ -> Array.make wheel_slots nil);
    bitmaps = Array.make levels 0;
    ready = cheap_create nil; overflow = cheap_create nil; nil;
    free = nil; free_len = 0;
    tracer = None; tr_cat = 0; tr_name = 0; tr_seq = 0;
    metrics = Metrics.Registry.create () }

let now t = t.clock
let rng t = t.root_rng
let dispatched t = t.dispatched
let pending t = t.pending
let tracer t = t.tracer

let set_tracer t tr =
  t.tracer <- tr;
  match tr with
  | None -> ()
  | Some tr ->
      t.tr_cat <- Trace.intern tr "engine";
      t.tr_name <- Trace.intern tr "dispatch";
      t.tr_seq <- Trace.intern tr "seq"
let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

(* Cells at or before the cursor tick join the ready heap (their slot has
   already been drained); later cells go to the lowest wheel level whose
   current window contains their tick, i.e. the smallest [k] with
   [tick lsr (5*(k+1)) = cur lsr (5*(k+1))]; anything beyond the top
   window goes to the overflow heap.  Occupied slots are therefore always
   strictly ahead of the cursor inside their window, which is what lets
   [refill] jump straight to the lowest set bitmap bit. *)
let insert t c tick =
  if tick <= t.cur then cheap_push t.ready c
  else begin
    let lvl = ref 0 in
    while
      !lvl < levels
      &&
      let shift = tick_bits * (!lvl + 1) in
      tick lsr shift <> t.cur lsr shift
    do
      incr lvl
    done;
    if !lvl < levels then begin
      let k = !lvl in
      let idx = (tick lsr (tick_bits * k)) land (wheel_slots - 1) in
      c.next <- t.slots.(k).(idx);
      t.slots.(k).(idx) <- c;
      t.bitmaps.(k) <- t.bitmaps.(k) lor (1 lsl idx)
    end
    else cheap_push t.overflow c
  end

(* fresh (time, seq) for a cell, then queue it *)
let arm t c time =
  c.time <- time;
  c.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.pending <- t.pending + 1;
  insert t c (tick_of_time time)

let max_free = 1024

let alloc_cell t =
  if t.free != t.nil then begin
    let c = t.free in
    t.free <- c.next;
    t.free_len <- t.free_len - 1;
    c.next <- t.nil;
    c
  end
  else
    { time = 0.; seq = 0; cb = noop; period = 0.; cancelled = false;
      next = t.nil }

let free_cell t c =
  if t.free_len < max_free then begin
    c.cb <- noop;                       (* drop the captured closure *)
    c.cancelled <- false;
    c.next <- t.free;
    t.free <- c;
    t.free_len <- t.free_len + 1
  end

(* ------------------------------------------------------------------ *)
(* Cursor advance                                                      *)
(* ------------------------------------------------------------------ *)

(* Make the ready heap non-empty if any event exists: jump the cursor to
   the lowest occupied slot (bitmap scan), draining level-0 slots into
   the ready heap and cascading higher-level slots downwards.  Each cell
   cascades at most [levels-1] times over its life, so the amortized cost
   per event is O(1). *)
let rec refill t =
  if t.ready.n > 0 then true
  else begin
    let k = ref 0 in
    while !k < levels && t.bitmaps.(!k) = 0 do
      incr k
    done;
    if !k < levels then begin
      let k = !k in
      let idx = ctz t.bitmaps.(k) in
      let shift = tick_bits * k in
      (* first tick of (level k, slot idx) in the cursor's window *)
      let slot_tick =
        (((t.cur lsr (shift + tick_bits)) lsl tick_bits) lor idx) lsl shift
      in
      t.cur <- slot_tick;
      let head = t.slots.(k).(idx) in
      t.slots.(k).(idx) <- t.nil;
      t.bitmaps.(k) <- t.bitmaps.(k) land lnot (1 lsl idx);
      let c = ref head in
      if k = 0 then
        while !c != t.nil do
          let next = (!c).next in
          (!c).next <- t.nil;
          cheap_push t.ready !c;
          c := next
        done
      else
        while !c != t.nil do
          let next = (!c).next in
          (!c).next <- t.nil;
          insert t !c (tick_of_time (!c).time);
          c := next
        done;
      refill t
    end
    else if t.overflow.n > 0 then begin
      (* wheel empty: jump to the earliest far event and pull everything
         inside the (new) top window back into the wheel *)
      let omt = tick_of_time t.overflow.a.(0).time in
      if omt > t.cur then t.cur <- omt;
      let top = tick_bits * levels in
      let top_end = ((t.cur lsr top) + 1) lsl top in
      let continue = ref true in
      while !continue && t.overflow.n > 0 do
        let c = t.overflow.a.(0) in
        let ct = tick_of_time c.time in
        if ct < top_end then insert t (cheap_pop t.overflow) ct
        else continue := false
      done;
      refill t
    end
    else false
  end

(* ------------------------------------------------------------------ *)
(* Public scheduling API                                               *)
(* ------------------------------------------------------------------ *)

type timer = cell

let schedule_at t ~time f =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  let c = alloc_cell t in
  c.cb <- f;
  c.period <- 0.;
  arm t c time

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let every t ~period ?phase f =
  if period <= 0. then invalid_arg "Engine.every: period must be positive";
  let phase = Option.value phase ~default:period in
  if phase < 0. then invalid_arg "Engine.schedule: negative delay";
  let c =
    { time = 0.; seq = 0; cb = f; period; cancelled = false; next = t.nil }
  in
  arm t c (t.clock +. phase);
  c

let cancel timer = timer.cancelled <- true

let set_period timer p =
  if p <= 0. then invalid_arg "Engine.set_period: period must be positive";
  timer.period <- p

let timer_period timer = timer.period

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

(* Peek-then-commit: [refill] positions the next event at the ready-heap
   root, [peek] reads it without removing, and the pop after the [until]
   check is the only descent — one per dispatched event. *)
let run ?until t =
  let continue = ref true in
  while !continue do
    if not (refill t) then continue := false
    else begin
      let c = t.ready.a.(0) in
      match until with
      | Some u when c.time > u ->
          t.clock <- u;
          continue := false
      | Some _ | None ->
          let c = cheap_pop t.ready in
          t.clock <- c.time;
          t.dispatched <- t.dispatched + 1;
          t.pending <- t.pending - 1;
          if c.cancelled then begin
            if c.period = 0. then free_cell t c
          end
          else begin
            (match t.tracer with
            | None -> ()
            | Some tr ->
                Trace.instant_i tr ~ts:c.time ~cat:t.tr_cat ~name:t.tr_name
                  ~tid:0 ~k:t.tr_seq c.seq);
            c.cb t;
            if c.period > 0. then begin
              if not c.cancelled then arm t c (c.time +. c.period)
            end
            else free_cell t c
          end
    end
  done;
  match until with
  | Some u when t.clock < u -> t.clock <- u
  | Some _ | None -> ()

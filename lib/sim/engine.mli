(** Discrete-event simulation engine.

    Time is in {e seconds} (float).  Events are closures ordered by time with
    deterministic FIFO tie-breaking.  Every FARM component (switches, soils,
    seeds, harvesters, baselines, traffic sources) runs on this engine, which
    replaces the paper's production data center as the experiment substrate.

    The event queue is a hierarchical timer wheel (5 levels of 32 slots at
    0.1 ms ticks, with an overflow heap past the ~56 min horizon) tuned for
    periodic-timer-heavy workloads: re-arming a timer is O(1) and
    allocation-free.  Dispatch order remains the exact lexicographic
    [(time, push-sequence)] order of a binary-heap queue, so simulations are
    bit-for-bit reproducible; see DESIGN.md "Scheduler & parallel sweeps". *)

type t

(** [create ~seed ()] makes an engine whose root RNG is seeded with [seed]
    (default 42). *)
val create : ?seed:int -> unit -> t

(** Current simulation time in seconds. *)
val now : t -> float

(** The engine's root RNG; use {!Rng.split} to derive per-component streams. *)
val rng : t -> Rng.t

(** Schedule a one-shot event [delay] seconds from now ([delay >= 0]). *)
val schedule : t -> delay:float -> (t -> unit) -> unit

(** Schedule at an absolute time (>= now). *)
val schedule_at : t -> time:float -> (t -> unit) -> unit

(** Cancellable periodic timer. *)
type timer

(** [every t ~period ?phase f] fires [f] every [period] seconds, first at
    [now + phase] (default [period]).  The period can be changed on the fly
    with {!set_period} — this is how seeds adapt their polling rate. *)
val every : t -> period:float -> ?phase:float -> (t -> unit) -> timer

val cancel : timer -> unit
val set_period : timer -> float -> unit
val timer_period : timer -> float

(** Run until the event queue drains or [until] is reached (events at
    [time > until] stay queued; the clock stops at [until]). *)
val run : ?until:float -> t -> unit

(** Number of events dispatched so far. *)
val dispatched : t -> int

(** Number of events currently queued (periodic timers count once). *)
val pending : t -> int

(** {2 Observability}

    Each engine owns a {!Metrics.Registry} that components publish named
    metrics into, and an optional {!Trace} sink.  With the sink unset
    (the default) every trace hook in the stack is a single
    [match ... with None] branch — near-zero cost.  With a sink attached
    the engine emits an instant event per dispatched callback, and
    soils, seeds, the seeder and harvesters emit spans stamped with
    simulation time (never wall clock), so traces are byte-identical
    across replays and across {!Sweep} domain counts. *)

(** The engine's trace sink, if any. *)
val tracer : t -> Trace.t option

(** Attach ([Some sink]) or detach ([None]) the trace sink. *)
val set_tracer : t -> Trace.t option -> unit

(** The engine's named-metric registry. *)
val metrics : t -> Metrics.Registry.t

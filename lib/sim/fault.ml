type event =
  | Switch_down of int
  | Switch_up of int
  | Link_down of int * int
  | Link_up of int * int
  | Ctrl_degrade of { loss : float; delay : float; dup : float }
  | Ctrl_restore
  | Counter_freeze of int
  | Counter_thaw of int
  | Counter_glitch of int
  (* overload faults: resource pressure rather than outright failure *)
  | Traffic_surge of { links : (int * int) list; factor : float }
  | Traffic_calm of { links : (int * int) list }
  | Report_storm of { node : int; reports : int }
  | Pcie_degrade of { node : int; factor : float }
  | Pcie_restore of int

type entry = { at : float; event : event }

type plan = entry list

type handlers = {
  on_switch_down : int -> unit;
  on_switch_up : int -> unit;
  on_link_down : int -> int -> unit;
  on_link_up : int -> int -> unit;
  on_ctrl_degrade : loss:float -> delay:float -> dup:float -> unit;
  on_ctrl_restore : unit -> unit;
  on_counter_freeze : int -> unit;
  on_counter_thaw : int -> unit;
  on_counter_glitch : int -> unit;
  on_traffic_surge : links:(int * int) list -> factor:float -> unit;
  on_traffic_calm : links:(int * int) list -> unit;
  on_report_storm : node:int -> reports:int -> unit;
  on_pcie_degrade : node:int -> factor:float -> unit;
  on_pcie_restore : int -> unit;
}

let null_handlers =
  {
    on_switch_down = (fun _ -> ());
    on_switch_up = (fun _ -> ());
    on_link_down = (fun _ _ -> ());
    on_link_up = (fun _ _ -> ());
    on_ctrl_degrade = (fun ~loss:_ ~delay:_ ~dup:_ -> ());
    on_ctrl_restore = (fun () -> ());
    on_counter_freeze = (fun _ -> ());
    on_counter_thaw = (fun _ -> ());
    on_counter_glitch = (fun _ -> ());
    on_traffic_surge = (fun ~links:_ ~factor:_ -> ());
    on_traffic_calm = (fun ~links:_ -> ());
    on_report_storm = (fun ~node:_ ~reports:_ -> ());
    on_pcie_degrade = (fun ~node:_ ~factor:_ -> ());
    on_pcie_restore = (fun _ -> ());
  }

let dispatch h = function
  | Switch_down n -> h.on_switch_down n
  | Switch_up n -> h.on_switch_up n
  | Link_down (a, b) -> h.on_link_down a b
  | Link_up (a, b) -> h.on_link_up a b
  | Ctrl_degrade { loss; delay; dup } -> h.on_ctrl_degrade ~loss ~delay ~dup
  | Ctrl_restore -> h.on_ctrl_restore ()
  | Counter_freeze n -> h.on_counter_freeze n
  | Counter_thaw n -> h.on_counter_thaw n
  | Counter_glitch n -> h.on_counter_glitch n
  | Traffic_surge { links; factor } -> h.on_traffic_surge ~links ~factor
  | Traffic_calm { links } -> h.on_traffic_calm ~links
  | Report_storm { node; reports } -> h.on_report_storm ~node ~reports
  | Pcie_degrade { node; factor } -> h.on_pcie_degrade ~node ~factor
  | Pcie_restore n -> h.on_pcie_restore n

let event_to_string = function
  | Switch_down n -> Printf.sprintf "switch_down %d" n
  | Switch_up n -> Printf.sprintf "switch_up %d" n
  | Link_down (a, b) -> Printf.sprintf "link_down %d-%d" a b
  | Link_up (a, b) -> Printf.sprintf "link_up %d-%d" a b
  | Ctrl_degrade { loss; delay; dup } ->
      Printf.sprintf "ctrl_degrade loss=%.3f delay=%.6f dup=%.3f" loss delay
        dup
  | Ctrl_restore -> "ctrl_restore"
  | Counter_freeze n -> Printf.sprintf "counter_freeze %d" n
  | Counter_thaw n -> Printf.sprintf "counter_thaw %d" n
  | Counter_glitch n -> Printf.sprintf "counter_glitch %d" n
  | Traffic_surge { links; factor } ->
      Printf.sprintf "traffic_surge x%.2f %s" factor
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) links))
  | Traffic_calm { links } ->
      Printf.sprintf "traffic_calm %s"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) links))
  | Report_storm { node; reports } ->
      Printf.sprintf "report_storm %d x%d" node reports
  | Pcie_degrade { node; factor } ->
      Printf.sprintf "pcie_degrade %d x%.2f" node factor
  | Pcie_restore n -> Printf.sprintf "pcie_restore %d" n

let entry_to_string e = Printf.sprintf "%.6f %s" e.at (event_to_string e.event)

let to_string plan =
  String.concat "\n" (List.map entry_to_string plan)

let normalize plan =
  List.stable_sort (fun a b -> Float.compare a.at b.at) plan

let inject ?(on_applied = fun _ _ -> ()) engine handlers plan =
  List.iter
    (fun { at; event } ->
      let at = Float.max at (Engine.now engine) in
      Engine.schedule_at engine ~time:at (fun _ ->
          dispatch handlers event;
          on_applied at event))
    (normalize plan)

(* Paired-episode generator.  Each episode picks a fault kind, a subject and
   a [t0, t1) window inside the horizon; "down" events usually come with the
   matching "up".  A subject that is currently down is not crashed again:
   windows for the same subject are drawn disjoint by construction (we track
   per-subject busy intervals and skip colliding draws). *)
let random_plan ~rng ~switches ?(links = []) ?(episodes = 4)
    ?(overload = false) ~horizon () =
  let entries = ref [] in
  let push at event = entries := { at; event } :: !entries in
  let busy : (string, (float * float) list) Hashtbl.t = Hashtbl.create 8 in
  (* Reserve a [t0, t1) window disjoint from previous ones for [key] (up to
     8 attempts).  [extend] widens the reservation to the whole horizon —
     used when the "down" half of an episode never recovers, so the subject
     is not downed twice. *)
  let window ?(extend = false) key =
    let rec try_ n =
      if n = 0 then None
      else
        let t0 = Rng.uniform rng (0.02 *. horizon) (0.7 *. horizon) in
        let t1 = t0 +. Rng.uniform rng (0.05 *. horizon) (0.25 *. horizon) in
        let taken = Option.value ~default:[] (Hashtbl.find_opt busy key) in
        (* a down that never recovers occupies [t0, inf): both the
           collision check and the reservation must use that interval *)
        let upper = if extend then infinity else t1 in
        if List.exists (fun (a, b) -> t0 < b && a < upper) taken then
          try_ (n - 1)
        else begin
          Hashtbl.replace busy key ((t0, upper) :: taken);
          Some (t0, t1)
        end
    in
    try_ 8
  in
  let switch_arr = Array.of_list switches in
  let link_arr = Array.of_list links in
  let kinds =
    List.concat
      [
        (if Array.length switch_arr > 0 then
           [ `Crash; `Crash; `Freeze; `Glitch ]
         else []);
        (if Array.length link_arr > 0 then [ `Link; `Link ] else []);
        [ `Ctrl ];
        (* overload episodes join the pool only on request, so plans drawn
           without them consume exactly the pre-overload rng stream *)
        (if overload && Array.length switch_arr > 0 then [ `Storm; `Pcie ]
         else []);
        (if overload && Array.length link_arr > 0 then [ `Surge ] else []);
      ]
  in
  let kind_arr = Array.of_list kinds in
  if Array.length kind_arr > 0 then
    for _ = 1 to episodes do
      match kind_arr.(Rng.int rng (Array.length kind_arr)) with
      | `Crash ->
          let sw = switch_arr.(Rng.int rng (Array.length switch_arr)) in
          (* ~75% of crashes recover within the horizon *)
          let recovers = Rng.bernoulli rng 0.75 in
          (match window ~extend:(not recovers) (Printf.sprintf "sw%d" sw) with
          | None -> ()
          | Some (t0, t1) ->
              push t0 (Switch_down sw);
              if recovers then push t1 (Switch_up sw))
      | `Link ->
          let a, b = link_arr.(Rng.int rng (Array.length link_arr)) in
          let recovers = Rng.bernoulli rng 0.85 in
          (match
             window ~extend:(not recovers) (Printf.sprintf "ln%d-%d" a b)
           with
          | None -> ()
          | Some (t0, t1) ->
              push t0 (Link_down (a, b));
              if recovers then push t1 (Link_up (a, b)))
      | `Ctrl -> (
          match window "ctrl" with
          | None -> ()
          | Some (t0, t1) ->
              let loss = Rng.uniform rng 0. 0.5 in
              let delay = Rng.uniform rng 0. 2e-3 in
              let dup = Rng.uniform rng 0. 0.3 in
              push t0 (Ctrl_degrade { loss; delay; dup });
              push t1 Ctrl_restore)
      | `Freeze ->
          let sw = switch_arr.(Rng.int rng (Array.length switch_arr)) in
          (match window (Printf.sprintf "frz%d" sw) with
          | None -> ()
          | Some (t0, t1) ->
              push t0 (Counter_freeze sw);
              push t1 (Counter_thaw sw))
      | `Glitch ->
          let sw = switch_arr.(Rng.int rng (Array.length switch_arr)) in
          let t = Rng.uniform rng (0.02 *. horizon) (0.9 *. horizon) in
          push t (Counter_glitch sw)
      | `Surge ->
          (* multiply offered load on one or two links for a window *)
          let n = 1 + Rng.int rng (min 2 (Array.length link_arr)) in
          let picked =
            List.init n (fun _ ->
                link_arr.(Rng.int rng (Array.length link_arr)))
            |> List.sort_uniq compare
          in
          let factor = Rng.uniform rng 2. 8. in
          let key =
            String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "srg%d-%d" a b) picked)
          in
          (match window key with
          | None -> ()
          | Some (t0, t1) ->
              push t0 (Traffic_surge { links = picked; factor });
              push t1 (Traffic_calm { links = picked }))
      | `Storm ->
          (* one task instance blasts a burst of reports at its harvester *)
          let sw = switch_arr.(Rng.int rng (Array.length switch_arr)) in
          let reports = 20 + Rng.int rng 81 in
          let t = Rng.uniform rng (0.02 *. horizon) (0.9 *. horizon) in
          push t (Report_storm { node = sw; reports })
      | `Pcie ->
          (* the polling bus slows down by 5-50x, then recovers *)
          let sw = switch_arr.(Rng.int rng (Array.length switch_arr)) in
          let factor = Rng.uniform rng 5. 50. in
          (match window (Printf.sprintf "pcie%d" sw) with
          | None -> ()
          | Some (t0, t1) ->
              push t0 (Pcie_degrade { node = sw; factor });
              push t1 (Pcie_restore sw))
    done;
  normalize (List.rev !entries)

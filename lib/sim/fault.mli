(** Deterministic fault injection.

    A fault {e plan} is a time-ordered list of fault events — switch crashes
    and recoveries, link flaps, control-plane degradation, counter
    freezes/glitches — described purely as data.  This module knows nothing
    about fabrics or seeders: callers supply a {!handlers} record that maps
    each event kind onto the layer that implements it (see
    [Farm_runtime.Chaos] for the standard wiring).  Because plans are data
    and all randomness flows through the caller's {!Rng.t}, a (engine seed,
    plan) pair replays byte-identically. *)

type event =
  | Switch_down of int          (** management-plane crash of a switch *)
  | Switch_up of int            (** crashed switch comes back *)
  | Link_down of int * int      (** link failure (either endpoint order) *)
  | Link_up of int * int
  | Ctrl_degrade of { loss : float; delay : float; dup : float }
      (** control messages: drop probability, added one-way latency
          (seconds), duplication probability *)
  | Ctrl_restore                (** control plane back to lossless *)
  | Counter_freeze of int       (** switch's ASIC reads return stale data *)
  | Counter_thaw of int
  | Counter_glitch of int       (** next ASIC read returns corrupted data *)
  | Traffic_surge of { links : (int * int) list; factor : float }
      (** offered load on the links multiplies by [factor] (overload) *)
  | Traffic_calm of { links : (int * int) list }
      (** surge over: the links return to their base rates *)
  | Report_storm of { node : int; reports : int }
      (** every seed instance on the switch bursts [reports] reports *)
  | Pcie_degrade of { node : int; factor : float }
      (** the switch's PCIe polling bandwidth divides by [factor] *)
  | Pcie_restore of int         (** PCIe bus back to full speed *)

type entry = { at : float; event : event }

type plan = entry list

type handlers = {
  on_switch_down : int -> unit;
  on_switch_up : int -> unit;
  on_link_down : int -> int -> unit;
  on_link_up : int -> int -> unit;
  on_ctrl_degrade : loss:float -> delay:float -> dup:float -> unit;
  on_ctrl_restore : unit -> unit;
  on_counter_freeze : int -> unit;
  on_counter_thaw : int -> unit;
  on_counter_glitch : int -> unit;
  on_traffic_surge : links:(int * int) list -> factor:float -> unit;
  on_traffic_calm : links:(int * int) list -> unit;
  on_report_storm : node:int -> reports:int -> unit;
  on_pcie_degrade : node:int -> factor:float -> unit;
  on_pcie_restore : int -> unit;
}

(** Ignores every event. *)
val null_handlers : handlers

val dispatch : handlers -> event -> unit

val event_to_string : event -> string
val entry_to_string : entry -> string

(** One line per entry. *)
val to_string : plan -> string

(** Stable sort by time. *)
val normalize : plan -> plan

(** Schedule every entry of the plan on the engine; entries in the past are
    applied at the current time.  [on_applied] runs after each event's
    handler — chaos tests use it to check invariants right after every
    fault. *)
val inject :
  ?on_applied:(float -> event -> unit) -> Engine.t -> handlers -> plan -> unit

(** Random well-formed plan: paired episodes (crash then usually recovery,
    link down then up, degrade then restore, freeze then thaw, one-shot
    glitches) over the given switches and links, all within
    [\[0, horizon\]].  Downs and ups are properly nested per subject, so a
    plan never crashes an already-crashed switch.  [episodes] defaults
    to 4.

    [overload] (default [false]) adds resource-pressure episodes to the
    pool: traffic surges on links (paired with a calm), report storms, and
    PCIe slowdowns (paired with a restore).  Leaving it off draws exactly
    the pre-overload rng stream, so existing plans replay unchanged. *)
val random_plan :
  rng:Rng.t ->
  switches:int list ->
  ?links:(int * int) list ->
  ?episodes:int ->
  ?overload:bool ->
  horizon:float ->
  unit ->
  plan

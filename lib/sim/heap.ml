type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable a : 'a entry array;
  mutable n : int;
  mutable next_seq : int;
}

(* Sentinel stored in every slot at index >= n.  Slots past [n] are never
   read (all heap operations index below [n]), so the cast is unobservable;
   it exists solely so free slots never pin a popped entry — including the
   padding left behind by [Array.make] on growth.  The unsafe cast is
   confined to this one value. *)
let dummy_unit : unit entry = { time = nan; seq = min_int; value = () }
let dummy : 'a. unit -> 'a entry = fun () -> Obj.magic dummy_unit

let create () = { a = [||]; n = 0; next_seq = 0 }
let is_empty h = h.n = 0
let size h = h.n

let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

let swap h i j =
  let t = h.a.(i) in
  h.a.(i) <- h.a.(j);
  h.a.(j) <- t

let push h ~time value =
  let e = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.n = Array.length h.a then begin
    let cap = Stdlib.max 16 (2 * h.n) in
    let a = Array.make cap (dummy ()) in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end;
  h.a.(h.n) <- e;
  h.n <- h.n + 1;
  let i = ref (h.n - 1) in
  while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* Clear the slot vacated by a pop: leaving it pointing at the popped
   entry keeps dead closures (and everything they capture) live until the
   slot is overwritten.  On the last pop drop the whole array. *)
let clear_vacated h =
  if h.n > 0 then h.a.(h.n) <- dummy () else h.a <- [||]

(* halve the backing array once occupancy falls far below capacity *)
let shrink h =
  let cap = Array.length h.a in
  if cap > 64 && h.n * 4 < cap && h.n > 0 then begin
    let a = Array.make (Stdlib.max 16 (2 * h.n)) (dummy ()) in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end

let pop h =
  if h.n = 0 then None
  else begin
    let top = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
        if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          swap h !i !m;
          i := !m
        end
      done
    end;
    clear_vacated h;
    shrink h;
    Some (top.time, top.value)
  end

let peek_time h = if h.n = 0 then None else Some h.a.(0).time

(* Unchecked fast path for the simulator run loop: one emptiness check by
   the caller, then time and value read without option/tuple allocation
   and a single sift-down. *)

let min_time_exn h =
  if h.n = 0 then invalid_arg "Heap.min_time_exn: empty heap";
  h.a.(0).time

let pop_min_exn h =
  if h.n = 0 then invalid_arg "Heap.pop_min_exn: empty heap";
  let top = h.a.(0) in
  h.n <- h.n - 1;
  if h.n > 0 then begin
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
      if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        swap h !i !m;
        i := !m
      end
    done
  end;
  clear_vacated h;
  shrink h;
  top.value

let capacity h = Array.length h.a

let clear h =
  h.n <- 0;
  h.a <- [||]

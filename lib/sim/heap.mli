(** Binary min-heap keyed by [(time, sequence)] — the event queue of the
    discrete-event simulator.  The sequence number makes the dequeue order of
    simultaneous events deterministic (FIFO). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h ~time x] inserts [x] with priority [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Pop the earliest element; [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** Earliest time without removing; [None] when empty. *)
val peek_time : 'a t -> float option

(** Earliest time without removing.  Raises [Invalid_argument] when
    empty — the allocation-free fast path of the simulator run loop. *)
val min_time_exn : 'a t -> float

(** Remove and return the earliest element's value (its time was already
    read via {!min_time_exn}).  Raises [Invalid_argument] when empty.
    Unlike {!pop}, allocates no option/tuple.

    Both pop paths clear the array slot they vacate — popped entries (and
    any closures they capture) become collectable immediately — and halve
    the backing array when occupancy falls below a quarter of capacity. *)
val pop_min_exn : 'a t -> 'a

(** Current backing-array capacity (for tests and instrumentation). *)
val capacity : 'a t -> int

val clear : 'a t -> unit

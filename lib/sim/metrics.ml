module Counter = struct
  type t = { mutable v : float }

  let create () = { v = 0. }
  let add t x = t.v <- t.v +. x
  let incr t = add t 1.
  let value t = t.v
  let reset t = t.v <- 0.
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0. }
  let set t x = t.v <- x
  let add t x = t.v <- t.v +. x
  let value t = t.v
  let reset t = t.v <- 0.
end

module Histogram = struct
  (* Invariant: slots [n .. cap-1] of [xs] always hold [infinity], so
     [ensure_sorted] can sort the whole backing array in place — the
     padding stays at the tail — instead of copying out a sub-array on
     every re-sort. *)
  type t = { mutable xs : float array; mutable n : int; mutable sorted : bool }

  let create () = { xs = [||]; n = 0; sorted = true }

  let record t x =
    if t.n = Array.length t.xs then begin
      let cap = Stdlib.max 16 (2 * t.n) in
      let a = Array.make cap infinity in
      Array.blit t.xs 0 a 0 t.n;
      t.xs <- a
    end;
    t.xs.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let fold f init t =
    let acc = ref init in
    for i = 0 to t.n - 1 do
      acc := f !acc t.xs.(i)
    done;
    !acc

  let mean t = if t.n = 0 then 0. else fold ( +. ) 0. t /. float_of_int t.n
  let max t = fold Float.max neg_infinity t
  let min t = fold Float.min infinity t

  let ensure_sorted t =
    if not t.sorted then begin
      Array.sort Float.compare t.xs;
      t.sorted <- true
    end

  (* Linear interpolation between closest ranks: rank = p/100 * (n-1),
     value = xs.(floor rank) blended with xs.(ceil rank). *)
  let percentile t p =
    if t.n = 0 then 0.
    else begin
      ensure_sorted t;
      let rank = p /. 100. *. float_of_int (t.n - 1) in
      let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
      let lo = Stdlib.max 0 (Stdlib.min (t.n - 1) lo) in
      let hi = Stdlib.max 0 (Stdlib.min (t.n - 1) hi) in
      let frac = rank -. float_of_int lo in
      (t.xs.(lo) *. (1. -. frac)) +. (t.xs.(hi) *. frac)
    end

  let reset t =
    Array.fill t.xs 0 (Array.length t.xs) infinity;
    t.n <- 0;
    t.sorted <- true
end

module Busy = struct
  type t = { mutable busy : float }

  let create () = { busy = 0. }
  let add t d = t.busy <- t.busy +. d
  let busy_time t = t.busy

  let utilization t ~from ~till =
    let span = till -. from in
    if span <= 0. then 0. else t.busy /. span

  let reset t = t.busy <- 0.
end

module Registry = struct
  type metric =
    | Counter of Counter.t
    | Gauge of Gauge.t
    | Gauge_fn of (unit -> float)
    | Histogram of Histogram.t

  type t = { tbl : (string, metric) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let kind = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Gauge_fn _ -> "gauge"
    | Histogram _ -> "histogram"

  let clash name existing wanted =
    invalid_arg
      (Printf.sprintf "Metrics.Registry: %S already registered as a %s (wanted %s)" name
         (kind existing) wanted)

  let counter t name =
    match Hashtbl.find_opt t.tbl name with
    | Some (Counter c) -> c
    | Some m -> clash name m "counter"
    | None ->
        let c = Counter.create () in
        Hashtbl.replace t.tbl name (Counter c);
        c

  let gauge t name =
    match Hashtbl.find_opt t.tbl name with
    | Some (Gauge g) -> g
    | Some m -> clash name m "gauge"
    | None ->
        let g = Gauge.create () in
        Hashtbl.replace t.tbl name (Gauge g);
        g

  (* Callback gauges let components publish existing private fields
     without restructuring them; re-registering the same name swaps the
     callback (newest owner wins, e.g. after a world rebuild). *)
  let gauge_fn t name f =
    match Hashtbl.find_opt t.tbl name with
    | Some (Gauge_fn _) | None -> Hashtbl.replace t.tbl name (Gauge_fn f)
    | Some m -> clash name m "gauge"

  let histogram t name =
    match Hashtbl.find_opt t.tbl name with
    | Some (Histogram h) -> h
    | Some m -> clash name m "histogram"
    | None ->
        let h = Histogram.create () in
        Hashtbl.replace t.tbl name (Histogram h);
        h

  let find t name = Hashtbl.find_opt t.tbl name

  let names t =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort String.compare

  let value t name =
    match Hashtbl.find_opt t.tbl name with
    | Some (Counter c) -> Some (Counter.value c)
    | Some (Gauge g) -> Some (Gauge.value g)
    | Some (Gauge_fn f) -> Some (f ())
    | Some (Histogram h) -> Some (Histogram.mean h)
    | None -> None

  let fnum f =
    (* Integral floats (the common case for counters) print without a
       fractional part; everything else gets round-trippable precision. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_json t =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n";
    let ns = names t in
    List.iteri
      (fun i name ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (Printf.sprintf "  %S: " name);
        match Hashtbl.find t.tbl name with
        | Counter c ->
            Buffer.add_string b
              (Printf.sprintf "{\"type\": \"counter\", \"value\": %s}" (fnum (Counter.value c)))
        | Gauge g ->
            Buffer.add_string b
              (Printf.sprintf "{\"type\": \"gauge\", \"value\": %s}" (fnum (Gauge.value g)))
        | Gauge_fn f ->
            Buffer.add_string b
              (Printf.sprintf "{\"type\": \"gauge\", \"value\": %s}" (fnum (f ())))
        | Histogram h ->
            let n = Histogram.count h in
            if n = 0 then
              Buffer.add_string b "{\"type\": \"histogram\", \"count\": 0}"
            else
              Buffer.add_string b
                (Printf.sprintf
                   "{\"type\": \"histogram\", \"count\": %d, \"mean\": %s, \"min\": %s, \
                    \"max\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}"
                   n (fnum (Histogram.mean h)) (fnum (Histogram.min h))
                   (fnum (Histogram.max h))
                   (fnum (Histogram.percentile h 50.))
                   (fnum (Histogram.percentile h 95.))
                   (fnum (Histogram.percentile h 99.))))
      ns;
    Buffer.add_string b "\n}\n";
    Buffer.contents b
end

(** Measurement primitives used by experiments: counters, gauges,
    histograms and busy-time (CPU utilization) accumulators, plus a
    named-metric {!Registry} for publishing them under dotted paths. *)

module Counter : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val incr : t -> unit
  val value : t -> float
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : unit -> t
  val record : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val max : t -> float
  val min : t -> float

  (** [percentile h p] with [p] in [0, 100]: linear interpolation
      between closest ranks ([rank = p/100 * (n-1)]); 0 on empty
      histograms.  Amortized: samples are re-sorted (in place, no
      allocation) only when new samples arrived since the last call. *)
  val percentile : t -> float -> float

  val reset : t -> unit
end

(** Accumulates busy time; [utilization] is busy/elapsed over an interval.
    Used for switch-CPU-load experiments (Figs. 5, 6, 9): utilization can
    exceed 1.0 (i.e. 100 %) on multi-core management CPUs. *)
module Busy : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val busy_time : t -> float

  (** [utilization t ~from ~till] = accumulated busy time / (till - from). *)
  val utilization : t -> from:float -> till:float -> float

  val reset : t -> unit
end

(** A named-metric registry.  Components register metrics under dotted
    paths (["soil.leaf0.polls.requested"], ["seeder.heartbeats.sent"])
    and the whole set can be snapshotted to JSON.  Each [Sim.Engine]
    owns one registry ([Engine.metrics]), keeping sweeps over multiple
    worlds isolated and deterministic. *)
module Registry : sig
  type metric =
    | Counter of Counter.t
    | Gauge of Gauge.t
    | Gauge_fn of (unit -> float)  (** callback gauge, sampled at snapshot time *)
    | Histogram of Histogram.t

  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Register-or-get: returns the existing counter when [name] is
      already bound to one.
      @raise Invalid_argument if [name] is bound to another kind. *)

  val gauge : t -> string -> Gauge.t

  val gauge_fn : t -> string -> (unit -> float) -> unit
  (** Register a callback gauge; re-registering the same name replaces
      the callback (newest owner wins). *)

  val histogram : t -> string -> Histogram.t
  val find : t -> string -> metric option

  val names : t -> string list
  (** Sorted. *)

  val value : t -> string -> float option
  (** Current scalar value (histograms report their mean). *)

  val to_json : t -> string
  (** Deterministic snapshot: names sorted, histograms summarized as
      count/mean/min/max/p50/p95/p99. *)
end

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let stream t k =
  if k < 0 then invalid_arg "Rng.stream: key must be non-negative";
  (* jump the splitmix counter by (k+1) gamma increments, then advance
     once: child streams for distinct keys are decorrelated, and the
     parent state is left untouched so derivation order cannot matter *)
  let s = Int64.add t.state (Int64.mul golden (Int64.of_int (k + 1))) in
  { state = next_int64 { state = s } }

let derive_seed root ~stream =
  if stream < 0 then invalid_arg "Rng.derive_seed: stream must be non-negative";
  let s = Int64.add (Int64.of_int root) (Int64.mul golden (Int64.of_int stream)) in
  Int64.to_int (next_int64 { state = s }) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* shift by 2 so the result fits OCaml's 63-bit native int *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  (* 53 random bits -> [0, 1) *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.

let uniform t lo hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (next_int64 t) 1L = 1L
let bernoulli t p = float t < p

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.Float.log (1. -. float t) /. lambda

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  (* inverse-CDF over precomputed-free approximation: rejection-free sampling
     via the harmonic normalization computed on the fly is O(n); instead use
     the standard approximation by inverting the continuous Zipf CDF. *)
  if s = 1. then begin
    let u = float t in
    let hn = Float.log (float_of_int n +. 1.) in
    let r = Float.exp (u *. hn) -. 1. in
    Stdlib.min (n - 1) (int_of_float r)
  end
  else begin
    let u = float t in
    let p = 1. -. s in
    let hn = ((float_of_int n +. 1.) ** p -. 1.) /. p in
    let r = ((u *. hn *. p) +. 1.) ** (1. /. p) -. 1. in
    Stdlib.min (n - 1) (Stdlib.max 0 (int_of_float r))
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

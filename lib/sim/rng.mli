(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator takes an explicit [Rng.t] so
    that experiments are reproducible and independent components can draw
    from independent streams (no global [Random] state). *)

type t

(** Create a generator from a seed. *)
val create : int -> t

(** Derive an independent stream; deterministic in the parent state.
    Each call advances the parent, so the n-th split depends on how many
    draws/splits preceded it — use {!stream} when children must be
    addressable by index (parallel sweeps). *)
val split : t -> t

(** [stream t k] derives the child stream for key [k >= 0] from [t]'s
    current state {e without} advancing [t]: children for distinct keys
    are independent of each other and of the order they are derived in,
    which is what per-scenario RNGs in a domain-parallel sweep need. *)
val stream : t -> int -> t

(** [derive_seed root ~stream] mixes an integer root seed and a stream
    index into a well-spread non-negative engine seed — the structured
    replacement for ad-hoc [seed + offset] arithmetic. *)
val derive_seed : int -> stream:int -> int

(** Uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

val bool : t -> bool

(** Bernoulli with probability [p]. *)
val bernoulli : t -> float -> bool

(** Exponential with rate [lambda] (mean [1/lambda]). *)
val exponential : t -> float -> float

(** Zipf-like rank sampler over [n] ranks with exponent [s]: returns a rank
    in [0, n) where low ranks are heavy.  Used for flow-size popularity. *)
val zipf : t -> n:int -> s:float -> int

(** Pick a uniformly random element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(* Domain-parallel sweep runner.

   FARM's evaluation is dominated by *independent* discrete-event runs:
   chaos cases under shifted seeds, experiment figures swept over a
   parameter, bench episodes.  Each run owns its engine, fabric and RNG,
   so they parallelize embarrassingly across OCaml 5 domains; the only
   requirements are per-run isolation (the scenario function must build
   all of its state itself, seeded via [Rng.stream]/[Rng.derive_seed])
   and deterministic result order (results are keyed by scenario index,
   never by completion order).

   Work is distributed by an atomic take-a-number counter, so uneven
   scenario costs balance automatically.  Exceptions in a scenario stop
   the sweep and re-raise in the caller after all domains joined. *)

let env_domains () =
  match Sys.getenv_opt "FARM_SWEEP_DOMAINS" with
  | Some s -> (try Some (max 1 (int_of_string (String.trim s))) with _ -> None)
  | None -> None

let default_domains () =
  match env_domains () with
  | Some d -> d
  | None -> Domain.recommended_domain_count ()

let run ?domains n f =
  if n < 0 then invalid_arg "Sweep.run: negative scenario count";
  let d =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Sweep.run: domains must be >= 1"
    | None -> default_domains ()
  in
  let d = Stdlib.min d n in
  if d <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
              ignore (Atomic.compare_and_set failure None (Some e));
              continue := false
      done
    in
    let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?domains a f = run ?domains (Array.length a) (fun i -> f a.(i))

(* Domain-parallel sweep runner.

   FARM's evaluation is dominated by *independent* discrete-event runs:
   chaos cases under shifted seeds, experiment figures swept over a
   parameter, bench episodes.  Each run owns its engine, fabric and RNG,
   so they parallelize embarrassingly across OCaml 5 domains; the only
   requirements are per-run isolation (the scenario function must build
   all of its state itself, seeded via [Rng.stream]/[Rng.derive_seed])
   and deterministic result order (results are keyed by scenario index,
   never by completion order).

   Work is distributed by an atomic take-a-number counter, so uneven
   scenario costs balance automatically.  Exceptions in a scenario stop
   the sweep and re-raise in the caller after all domains joined.

   Multicore discipline (why the shape below, measured on this repo's
   bench_sweep):

   - Domains are clamped to the hardware by default.  OCaml 5 minor
     collections are stop-the-world across all running domains, so
     oversubscribing cores turns every minor GC into a rendezvous with
     descheduled domains — a measured 3-15x *slowdown*, not a wash.
     [~clamp:false] keeps the old behavior for determinism tests that
     need real extra domains.
   - Workers run with an enlarged per-domain minor heap
     ([gc_tune], on by default): fewer minor collections means fewer
     stop-the-world barriers.  [Gc.set minor_heap_size] is per-domain in
     OCaml 5, so a spawned worker's setting dies with its domain; the
     participating caller's GC parameters are snapshotted and restored.
   - Workers accumulate results domain-locally and the caller assembles
     the final array after the join: scenario returns are never [Some]-
     boxed into a shared array from multiple domains, and the only
     cross-domain mutable words are the two atomics (allocated apart so
     the take-a-number counter does not false-share the failure slot). *)

let env_domains () =
  match Sys.getenv_opt "FARM_SWEEP_DOMAINS" with
  | Some s -> (try Some (max 1 (int_of_string (String.trim s))) with _ -> None)
  | None -> None

let default_domains () =
  match env_domains () with
  | Some d -> d
  | None -> Domain.recommended_domain_count ()

let requested_domains domains =
  match domains with
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Sweep.run: domains must be >= 1"
  | None -> default_domains ()

let effective_domains ?domains ?(clamp = true) n =
  let d = requested_domains domains in
  let d = if clamp then Stdlib.min d (Domain.recommended_domain_count ()) else d in
  Stdlib.min d (Stdlib.max n 0)

(* Minor heap words given to each sweep worker (16 MB on 64-bit): large
   enough that allocation-heavy scenarios promote in bulk instead of
   tripping frequent stop-the-world minor collections. *)
let worker_minor_words = 2 * 1024 * 1024

let run ?domains ?(clamp = true) ?(gc_tune = true) n f =
  if n < 0 then invalid_arg "Sweep.run: negative scenario count";
  let d = effective_domains ?domains ~clamp n in
  if d <= 1 then Array.init n f
  else begin
    let failure = Atomic.make None in
    (* spacing allocation: keeps [next] (hammered by take-a-number) and
       [failure] (read per iteration) off the same cache line *)
    let _pad = Sys.opaque_identity (Array.make 16 0) in
    let next = Atomic.make 0 in
    ignore (_pad : int array);
    let tune_gc () =
      if gc_tune then
        Gc.set { (Gc.get ()) with Gc.minor_heap_size = worker_minor_words }
    in
    (* Take scenarios until the counter runs out (or a peer failed) and
       return this worker's results, newest first, keyed by index. *)
    let worker () =
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f i with
          | v -> acc := (i, v) :: !acc
          | exception e ->
              ignore (Atomic.compare_and_set failure None (Some e));
              continue := false
      done;
      !acc
    in
    let spawned =
      Array.init (d - 1) (fun _ ->
          Domain.spawn (fun () ->
              tune_gc ();
              worker ()))
    in
    (* the caller participates too; its GC parameters must not leak *)
    let caller_gc = Gc.get () in
    let mine =
      Fun.protect
        ~finally:(fun () -> if gc_tune then Gc.set caller_gc)
        (fun () ->
          tune_gc ();
          worker ())
    in
    let parts = Array.map Domain.join spawned in
    (match Atomic.get failure with Some e -> raise e | None -> ());
    let results = Array.make n None in
    let fill part = List.iter (fun (i, v) -> results.(i) <- Some v) part in
    fill mine;
    Array.iter fill parts;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?domains ?clamp ?gc_tune a f =
  run ?domains ?clamp ?gc_tune (Array.length a) (fun i -> f a.(i))

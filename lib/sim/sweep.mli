(** Domain-parallel runner for independent simulation scenarios.

    Fans scenario indices across an OCaml 5 domain pool with an atomic
    take-a-number queue.  Results are keyed by scenario index, so a sweep
    is deterministic whenever each scenario function is — parallel and
    sequential executions produce byte-identical result arrays (asserted
    by [test/test_sweep.ml] and the bench_sweep harness).

    Scenario functions must be self-contained: build the engine, fabric
    and RNG inside the call (derive per-scenario seeds with {!Rng.stream}
    or {!Rng.derive_seed}) and share no mutable state across indices.

    {b Multicore discipline.}  OCaml 5 minor collections are
    stop-the-world across every running domain, so spawning more domains
    than the machine has cores makes sweeps dramatically {e slower} (each
    minor GC must rendezvous with descheduled domains).  [run] therefore
    clamps the domain count to [Domain.recommended_domain_count] by
    default, and gives each worker an enlarged per-domain minor heap so
    allocation-heavy scenarios trip fewer barriers.  Both behaviors have
    escape hatches ([~clamp:false], [~gc_tune:false]); worker GC tuning
    never leaks into the calling domain. *)

(** Domain count used when [?domains] is omitted:
    [FARM_SWEEP_DOMAINS] if set, else [Domain.recommended_domain_count].
    The value is still subject to [run]'s hardware clamp. *)
val default_domains : unit -> int

(** [effective_domains ?domains ?clamp n] is the domain count [run] will
    actually use for [n] scenarios: the requested count (defaulting as
    above), clamped to [Domain.recommended_domain_count] unless
    [~clamp:false], and never more than [n]. *)
val effective_domains : ?domains:int -> ?clamp:bool -> int -> int

(** [run ~domains n f] evaluates [f 0 .. f (n-1)] on
    [effective_domains ?domains ?clamp n] domains (the caller's domain is
    one of them) and returns the results indexed by scenario.  An
    effective count [<= 1] degrades to sequential [Array.init].

    [~clamp:false] spawns exactly the requested domains even beyond the
    core count (determinism tests); [~gc_tune:false] leaves every
    domain's GC parameters alone.  If a scenario raises, the sweep stops
    taking new work, every domain is joined, and the first exception
    re-raises here. *)
val run :
  ?domains:int -> ?clamp:bool -> ?gc_tune:bool -> int -> (int -> 'a) -> 'a array

(** [map ~domains a f] = [run ~domains (Array.length a) (fun i -> f a.(i))]. *)
val map :
  ?domains:int -> ?clamp:bool -> ?gc_tune:bool -> 'a array -> ('a -> 'b) -> 'b array

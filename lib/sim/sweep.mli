(** Domain-parallel runner for independent simulation scenarios.

    Fans scenario indices across an OCaml 5 domain pool with an atomic
    take-a-number queue.  Results are keyed by scenario index, so a sweep
    is deterministic whenever each scenario function is — parallel and
    sequential executions produce byte-identical result arrays (asserted
    by [test/test_sweep.ml] and the bench_sweep harness).

    Scenario functions must be self-contained: build the engine, fabric
    and RNG inside the call (derive per-scenario seeds with {!Rng.stream}
    or {!Rng.derive_seed}) and share no mutable state across indices. *)

(** Domain count used when [?domains] is omitted:
    [FARM_SWEEP_DOMAINS] if set, else [Domain.recommended_domain_count]. *)
val default_domains : unit -> int

(** [run ~domains n f] evaluates [f 0 .. f (n-1)] on [min domains n]
    domains (the caller's domain is one of them) and returns the results
    indexed by scenario.  [domains <= 1] degrades to sequential
    [Array.init].  If a scenario raises, the sweep stops taking new work,
    every domain is joined, and the first exception re-raises here. *)
val run : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [map ~domains a f] = [run ~domains (Array.length a) (fun i -> f a.(i))]. *)
val map : ?domains:int -> 'a array -> ('a -> 'b) -> 'b array

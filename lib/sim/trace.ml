(* Deterministic structured tracing.  Events are stamped with simulation
   time only — never wall clock — so a traced run is byte-identical
   across replays and across [Sweep] domain counts.  A sink is owned by
   one engine (no global mutable state), which is what makes the
   domain-count invariance hold by construction.

   Storage is a chunked structure-of-arrays buffer: the hot path writes
   unboxed floats and packed ints into parallel arrays and never
   allocates (no event record, no args list, no string formatting).
   Chunks double from 1 KiB slots up to a 64 KiB cap and are never
   copied, so recording N events allocates exactly the slots that hold
   them — there is no doubling-and-blit churn for the GC to chase.
   Strings are interned once per sink; everything textual — the Chrome
   JSON, [Printf] decimal timestamps, escaping — happens at flush time.
   The legacy [instant]/[span]/[counter] entry points still accept
   arbitrary [args] lists; those events are kept as records in a lazily
   allocated side slab, so the public [event] view and the emitted JSON
   are unchanged. *)

type arg = S of string | I of int | F of float

type phase =
  | Span of float  (** complete span: payload is the duration, seconds *)
  | Instant
  | Counter of float

type event = {
  ts : float;  (** simulation time, seconds *)
  cat : string;
  name : string;
  tid : int;
  ph : phase;
  args : (string * arg) list;
}

let null_event = { ts = 0.; cat = ""; name = ""; tid = 0; ph = Instant; args = [] }

(* Per-slot compact encoding.  [desc] packs the shape tag, the interned
   string ids and the track id:

     bits 0..3    shape
     bits 4..19   name id   (16 bits)
     bits 20..29  cat id    (10 bits)
     bits 30..39  key0 id   (10 bits)
     bits 40..49  key1 id   (10 bits)
     bits 50..59  tid       (10 bits)

   Shapes fix the argument layout; anything that does not fit (or whose
   ids overflow the field widths) falls back to [sh_gen], which stores a
   full [event] record in the chunk's side slab. *)
let sh_gen = 0 (* side slab holds the event verbatim *)
let sh_i0 = 1 (* instant, no args *)
let sh_ii = 2 (* instant, args = [k0, I a0] *)
let sh_if = 3 (* instant, args = [k0, F pay] *)
let sh_iff = 4 (* instant, args = [k0, F pay; k1, F pay2] *)
let sh_iif = 5 (* instant, args = [k0, I a0; k1, F pay] *)
let sh_iis = 6 (* instant, args = [k0, I a0; k1, S (str a1)] *)
let sh_isi = 7 (* instant, args = [k0, S (str a0); k1, I a1] *)
let sh_s0 = 8 (* span dur=pay, no args *)
let sh_sf = 9 (* span dur=pay, args = [k0, F pay2] *)
let sh_si = 10 (* span dur=pay, args = [k0, I a0] *)
let sh_c = 11 (* counter, value = pay *)

let name_bits = 16
let small_bits = 10
let name_max = (1 lsl name_bits) - 1
let small_max = (1 lsl small_bits) - 1

let pack ~shape ~cat ~name ~k0 ~k1 ~tid =
  shape
  lor (name lsl 4)
  lor (cat lsl (4 + name_bits))
  lor (k0 lsl (4 + name_bits + small_bits))
  lor (k1 lsl (4 + name_bits + (2 * small_bits)))
  lor (tid lsl (4 + name_bits + (3 * small_bits)))

let desc_shape d = d land 0xF
let desc_name d = (d lsr 4) land name_max
let desc_cat d = (d lsr (4 + name_bits)) land small_max
let desc_k0 d = (d lsr (4 + name_bits + small_bits)) land small_max
let desc_k1 d = (d lsr (4 + name_bits + (2 * small_bits))) land small_max
let desc_tid d = (d lsr (4 + name_bits + (3 * small_bits))) land small_max

(* One storage chunk: parallel per-slot arrays (SoA, unboxed stores).
   [k_objs] — the side slab for generic records — is allocated only when
   a [sh_gen] event actually lands in the chunk. *)
type chunk = {
  k_ts : float array;
  k_pay : float array;  (* dur / counter value / float arg 0 *)
  k_pay2 : float array;  (* float arg 1 *)
  k_desc : int array;
  k_a0 : int array;
  k_a1 : int array;
  mutable k_objs : event array;  (* [||] until a sh_gen slot is stored *)
}

let chunk_make cap =
  { k_ts = Array.make cap 0.; k_pay = Array.make cap 0.;
    k_pay2 = Array.make cap 0.; k_desc = Array.make cap 0;
    k_a0 = Array.make cap 0; k_a1 = Array.make cap 0; k_objs = [||] }

let chunk_cap c = Array.length c.k_ts

let first_chunk = 1024
let max_chunk = 65536

type t = {
  ring : int;  (* 0 = unbounded chunked buffer; >0 = flight-recorder ring *)
  mutable chunks : chunk array;  (* pointer table; only it is ever copied *)
  mutable n_chunks : int;
  mutable cur : chunk;  (* == chunks.(n_chunks - 1) *)
  mutable cur_off : int;  (* next free slot in [cur] (unbounded mode) *)
  mutable len : int;  (* valid events *)
  mutable head : int;  (* ring read position (oldest event) *)
  mutable dropped : int;  (* events overwritten by the ring *)
  (* string intern table; ids are stable for the sink's lifetime *)
  itbl : (string, int) Hashtbl.t;
  mutable istrs : string array;
  mutable istr_n : int;
}

let create ?(ring = 0) () =
  if ring < 0 then invalid_arg "Trace.create: negative ring";
  let cap = if ring > 0 then ring else first_chunk in
  let c = chunk_make cap in
  { ring; chunks = [| c |]; n_chunks = 1; cur = c; cur_off = 0;
    len = 0; head = 0; dropped = 0;
    itbl = Hashtbl.create 64; istrs = Array.make 64 ""; istr_n = 0 }

let count t = t.len
let dropped t = t.dropped

let clear t =
  (* keep the first chunk, release the rest; drop retained generic
     records.  The intern table survives (ids stay valid across [clear],
     which lets callers cache them). *)
  let c0 = t.chunks.(0) in
  if c0.k_objs != [||] then Array.fill c0.k_objs 0 (Array.length c0.k_objs) null_event;
  if t.n_chunks > 1 then t.chunks <- [| c0 |];
  t.n_chunks <- 1;
  t.cur <- c0;
  t.cur_off <- 0;
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

let intern t s =
  (* [Hashtbl.find] rather than [find_opt]: a hit returns the id with no
     [Some] box, so steady-state interning allocates nothing *)
  match Hashtbl.find t.itbl s with
  | id -> id
  | exception Not_found ->
      let id = t.istr_n in
      if id = Array.length t.istrs then begin
        let a = Array.make (2 * id) "" in
        Array.blit t.istrs 0 a 0 id;
        t.istrs <- a
      end;
      t.istrs.(id) <- s;
      t.istr_n <- id + 1;
      Hashtbl.add t.itbl s id;
      id

let istr t id = t.istrs.(id)

let add_chunk t =
  let cap = min (2 * chunk_cap t.cur) max_chunk in
  let c = chunk_make cap in
  if t.n_chunks = Array.length t.chunks then begin
    let a = Array.make (2 * t.n_chunks) c in
    Array.blit t.chunks 0 a 0 t.n_chunks;
    t.chunks <- a
  end;
  t.chunks.(t.n_chunks) <- c;
  t.n_chunks <- t.n_chunks + 1;
  t.cur <- c;
  t.cur_off <- 0

(* Claim the chunk and offset of the next event's slot, shared by every
   emitter.  Ring mode rotates inside its single preallocated chunk;
   unbounded mode appends, adding a fresh chunk when the current one
   fills (no copying, ever). *)
let[@inline] next_slot t =
  if t.ring > 0 then
    if t.len < t.ring then begin
      let i = (t.head + t.len) mod t.ring in
      t.len <- t.len + 1;
      i
    end
    else begin
      (* full: overwrite the oldest event *)
      let i = t.head in
      t.head <- (t.head + 1) mod t.ring;
      t.dropped <- t.dropped + 1;
      i
    end
  else begin
    if t.cur_off = chunk_cap t.cur then add_chunk t;
    let i = t.cur_off in
    t.cur_off <- i + 1;
    t.len <- t.len + 1;
    i
  end

let[@inline] store t i ~ts ~pay ~pay2 ~desc ~a0 ~a1 =
  let c = t.cur in
  c.k_ts.(i) <- ts;
  c.k_pay.(i) <- pay;
  c.k_pay2.(i) <- pay2;
  c.k_desc.(i) <- desc;
  c.k_a0.(i) <- a0;
  c.k_a1.(i) <- a1;
  (* clear a possibly recycled generic slot so its record can be GC'd
     (ring mode only — unbounded slots are always fresh) *)
  if c.k_objs != [||] && c.k_objs.(i) != null_event then
    c.k_objs.(i) <- null_event

let emit t ev =
  let i = next_slot t in
  store t i ~ts:0. ~pay:0. ~pay2:0. ~desc:sh_gen ~a0:0 ~a1:0;
  let c = t.cur in
  if c.k_objs == [||] then c.k_objs <- Array.make (chunk_cap c) null_event;
  c.k_objs.(i) <- ev

(* ids fit their packed fields on any realistic sink; the check keeps the
   encoding total rather than silently corrupting *)
let fits_small k = k >= 0 && k <= small_max
let fits ~cat ~name ~k0 ~k1 ~tid =
  fits_small cat && fits_small k0 && fits_small k1 && fits_small tid
  && name >= 0 && name <= name_max

let instant0 t ~ts ~cat ~name ~tid =
  if fits ~cat ~name ~k0:0 ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:0. ~pay2:0.
      ~desc:(pack ~shape:sh_i0 ~cat ~name ~k0:0 ~k1:0 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant; args = [] }

let instant_i t ~ts ~cat ~name ~tid ~k v =
  if fits ~cat ~name ~k0:k ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:0. ~pay2:0.
      ~desc:(pack ~shape:sh_ii ~cat ~name ~k0:k ~k1:0 ~tid)
      ~a0:v ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k, I v) ] }

let instant_f t ~ts ~cat ~name ~tid ~k v =
  if fits ~cat ~name ~k0:k ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:v ~pay2:0.
      ~desc:(pack ~shape:sh_if ~cat ~name ~k0:k ~k1:0 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k, F v) ] }

let instant_ff t ~ts ~cat ~name ~tid ~k0 v0 ~k1 v1 =
  if fits ~cat ~name ~k0 ~k1 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:v0 ~pay2:v1
      ~desc:(pack ~shape:sh_iff ~cat ~name ~k0 ~k1 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k0, F v0); (istr t k1, F v1) ] }

let instant_if t ~ts ~cat ~name ~tid ~k0 v0 ~k1 v1 =
  if fits ~cat ~name ~k0 ~k1 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:v1 ~pay2:0.
      ~desc:(pack ~shape:sh_iif ~cat ~name ~k0 ~k1 ~tid)
      ~a0:v0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k0, I v0); (istr t k1, F v1) ] }

let instant_is t ~ts ~cat ~name ~tid ~k0 v0 ~k1 s1 =
  if fits ~cat ~name ~k0 ~k1 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:0. ~pay2:0.
      ~desc:(pack ~shape:sh_iis ~cat ~name ~k0 ~k1 ~tid)
      ~a0:v0 ~a1:s1
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k0, I v0); (istr t k1, S (istr t s1)) ] }

let instant_si t ~ts ~cat ~name ~tid ~k0 s0 ~k1 v1 =
  if fits ~cat ~name ~k0 ~k1 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:0. ~pay2:0.
      ~desc:(pack ~shape:sh_isi ~cat ~name ~k0 ~k1 ~tid)
      ~a0:s0 ~a1:v1
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Instant;
        args = [ (istr t k0, S (istr t s0)); (istr t k1, I v1) ] }

let span0 t ~ts ~dur ~cat ~name ~tid =
  if fits ~cat ~name ~k0:0 ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:dur ~pay2:0.
      ~desc:(pack ~shape:sh_s0 ~cat ~name ~k0:0 ~k1:0 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Span dur;
        args = [] }

let span_f t ~ts ~dur ~cat ~name ~tid ~k v =
  if fits ~cat ~name ~k0:k ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:dur ~pay2:v
      ~desc:(pack ~shape:sh_sf ~cat ~name ~k0:k ~k1:0 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Span dur;
        args = [ (istr t k, F v) ] }

let span_i t ~ts ~dur ~cat ~name ~tid ~k v =
  if fits ~cat ~name ~k0:k ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:dur ~pay2:0.
      ~desc:(pack ~shape:sh_si ~cat ~name ~k0:k ~k1:0 ~tid)
      ~a0:v ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Span dur;
        args = [ (istr t k, I v) ] }

let counter_id t ~ts ~cat ~name ~tid ~value =
  if fits ~cat ~name ~k0:0 ~k1:0 ~tid then begin
    let i = next_slot t in
    store t i ~ts ~pay:value ~pay2:0.
      ~desc:(pack ~shape:sh_c ~cat ~name ~k0:0 ~k1:0 ~tid)
      ~a0:0 ~a1:0
  end
  else
    emit t
      { ts; cat = istr t cat; name = istr t name; tid; ph = Counter value;
        args = [] }

(* Legacy record-building entry points: arbitrary [cat]/[name]/[args],
   kept for cold paths and external callers.  They intern the strings (so
   flush-time decoding shares one table) and store compactly when the
   args match a fixed shape. *)

let instant t ~ts ~cat ~name ?(tid = 0) ?(args = []) () =
  let cat = intern t cat and name = intern t name in
  match args with
  | [] -> instant0 t ~ts ~cat ~name ~tid
  | [ (k, I v) ] -> instant_i t ~ts ~cat ~name ~tid ~k:(intern t k) v
  | [ (k, F v) ] -> instant_f t ~ts ~cat ~name ~tid ~k:(intern t k) v
  | [ (k0, F v0); (k1, F v1) ] ->
      instant_ff t ~ts ~cat ~name ~tid ~k0:(intern t k0) v0 ~k1:(intern t k1) v1
  | [ (k0, I v0); (k1, F v1) ] ->
      instant_if t ~ts ~cat ~name ~tid ~k0:(intern t k0) v0 ~k1:(intern t k1) v1
  | [ (k0, I v0); (k1, S s1) ] ->
      instant_is t ~ts ~cat ~name ~tid ~k0:(intern t k0) v0 ~k1:(intern t k1)
        (intern t s1)
  | [ (k0, S s0); (k1, I v1) ] ->
      instant_si t ~ts ~cat ~name ~tid ~k0:(intern t k0) (intern t s0)
        ~k1:(intern t k1) v1
  | args ->
      emit t
        { ts; cat = istr t cat; name = istr t name; tid; ph = Instant; args }

let span t ~ts ~dur ~cat ~name ?(tid = 0) ?(args = []) () =
  let cat = intern t cat and name = intern t name in
  match args with
  | [] -> span0 t ~ts ~dur ~cat ~name ~tid
  | [ (k, F v) ] -> span_f t ~ts ~dur ~cat ~name ~tid ~k:(intern t k) v
  | [ (k, I v) ] -> span_i t ~ts ~dur ~cat ~name ~tid ~k:(intern t k) v
  | args ->
      emit t
        { ts; cat = istr t cat; name = istr t name; tid; ph = Span dur; args }

let counter t ~ts ~cat ~name ~value ?(tid = 0) () =
  counter_id t ~ts ~cat:(intern t cat) ~name:(intern t name) ~tid ~value

(* ------------------------------------------------------------------ *)
(* Decoding (flush time only)                                          *)
(* ------------------------------------------------------------------ *)

(* Reconstruct the [event] record held at offset [i] of chunk [c]. *)
let decode_at t c i =
  let d = c.k_desc.(i) in
  let shape = desc_shape d in
  if shape = sh_gen then c.k_objs.(i)
  else begin
    let cat = istr t (desc_cat d) and name = istr t (desc_name d) in
    let k0 () = istr t (desc_k0 d) and k1 () = istr t (desc_k1 d) in
    let ts = c.k_ts.(i) and tid = desc_tid d in
    let pay = c.k_pay.(i) and pay2 = c.k_pay2.(i) in
    let a0 = c.k_a0.(i) and a1 = c.k_a1.(i) in
    let ph, args =
      if shape = sh_i0 then (Instant, [])
      else if shape = sh_ii then (Instant, [ (k0 (), I a0) ])
      else if shape = sh_if then (Instant, [ (k0 (), F pay) ])
      else if shape = sh_iff then (Instant, [ (k0 (), F pay); (k1 (), F pay2) ])
      else if shape = sh_iif then (Instant, [ (k0 (), I a0); (k1 (), F pay) ])
      else if shape = sh_iis then
        (Instant, [ (k0 (), I a0); (k1 (), S (istr t a1)) ])
      else if shape = sh_isi then
        (Instant, [ (k0 (), S (istr t a0)); (k1 (), I a1) ])
      else if shape = sh_s0 then (Span pay, [])
      else if shape = sh_sf then (Span pay, [ (k0 (), F pay2) ])
      else if shape = sh_si then (Span pay, [ (k0 (), I a0) ])
      else (Counter pay, [])
    in
    { ts; cat; name; tid; ph; args }
  end

let iter f t =
  if t.ring > 0 then begin
    let c = t.chunks.(0) in
    for i = 0 to t.len - 1 do
      f (decode_at t c ((t.head + i) mod t.ring))
    done
  end
  else begin
    (* every chunk before the current one is full *)
    let rem = ref t.len in
    for ci = 0 to t.n_chunks - 1 do
      let c = t.chunks.(ci) in
      let n = min !rem (chunk_cap c) in
      for i = 0 to n - 1 do
        f (decode_at t c i)
      done;
      rem := !rem - n
    done
  end

let events t =
  let acc = ref [] in
  iter (fun ev -> acc := ev :: !acc) t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (Perfetto-compatible)                      *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Microseconds with fixed sub-microsecond precision: deterministic
   decimal formatting, no locale or platform variance. *)
let us ts = Printf.sprintf "%.3f" (ts *. 1e6)

let arg_to_buf b = function
  | S s ->
      Buffer.add_char b '"';
      json_escape b s;
      Buffer.add_char b '"'
  | I i -> Buffer.add_string b (string_of_int i)
  | F f -> Buffer.add_string b (Printf.sprintf "%.17g" f)

let event_to_buf b ev =
  Buffer.add_string b "{\"name\":\"";
  json_escape b ev.name;
  Buffer.add_string b "\",\"cat\":\"";
  json_escape b ev.cat;
  Buffer.add_string b "\",\"ph\":\"";
  (match ev.ph with
  | Span _ -> Buffer.add_char b 'X'
  | Instant -> Buffer.add_char b 'i'
  | Counter _ -> Buffer.add_char b 'C');
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (us ev.ts);
  (match ev.ph with
  | Span dur ->
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us dur)
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Counter _ -> ());
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int ev.tid);
  let args =
    match ev.ph with
    | Counter v -> [ ("value", F v) ]
    | Span _ | Instant -> ev.args
  in
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          json_escape b k;
          Buffer.add_string b "\":";
          arg_to_buf b v)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_chrome_json t =
  let b = Buffer.create (256 * (1 + t.len)) in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  iter
    (fun ev ->
      if !first then first := false else Buffer.add_string b ",\n";
      event_to_buf b ev)
    t;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

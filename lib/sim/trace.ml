(* Deterministic structured tracing.  Events are stamped with simulation
   time only — never wall clock — so a traced run is byte-identical
   across replays and across [Sweep] domain counts.  A sink is owned by
   one engine (no global mutable state), which is what makes the
   domain-count invariance hold by construction. *)

type arg = S of string | I of int | F of float

type phase =
  | Span of float  (** complete span: payload is the duration, seconds *)
  | Instant
  | Counter of float

type event = {
  ts : float;  (** simulation time, seconds *)
  cat : string;
  name : string;
  tid : int;
  ph : phase;
  args : (string * arg) list;
}

let null_event = { ts = 0.; cat = ""; name = ""; tid = 0; ph = Instant; args = [] }

type t = {
  ring : int;  (* 0 = unbounded append buffer; >0 = flight-recorder ring *)
  mutable buf : event array;
  mutable len : int;  (* valid events in [buf] *)
  mutable head : int;  (* ring read position (oldest event) *)
  mutable dropped : int;  (* events overwritten by the ring *)
}

let create ?(ring = 0) () =
  if ring < 0 then invalid_arg "Trace.create: negative ring";
  let cap = if ring > 0 then ring else 1024 in
  { ring; buf = Array.make cap null_event; len = 0; head = 0; dropped = 0 }

let count t = t.len
let dropped t = t.dropped

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

let emit t ev =
  if t.ring > 0 then
    if t.len < t.ring then begin
      t.buf.((t.head + t.len) mod t.ring) <- ev;
      t.len <- t.len + 1
    end
    else begin
      (* full: overwrite the oldest event *)
      t.buf.(t.head) <- ev;
      t.head <- (t.head + 1) mod t.ring;
      t.dropped <- t.dropped + 1
    end
  else begin
    if t.len = Array.length t.buf then begin
      let a = Array.make (2 * t.len) null_event in
      Array.blit t.buf 0 a 0 t.len;
      t.buf <- a
    end;
    t.buf.(t.len) <- ev;
    t.len <- t.len + 1
  end

let instant t ~ts ~cat ~name ?(tid = 0) ?(args = []) () =
  emit t { ts; cat; name; tid; ph = Instant; args }

let span t ~ts ~dur ~cat ~name ?(tid = 0) ?(args = []) () =
  emit t { ts; cat; name; tid; ph = Span dur; args }

let counter t ~ts ~cat ~name ~value ?(tid = 0) () =
  emit t { ts; cat; name; tid; ph = Counter value; args = [] }

let events t =
  List.init t.len (fun i ->
      if t.ring > 0 then t.buf.((t.head + i) mod t.ring) else t.buf.(i))

let iter f t =
  for i = 0 to t.len - 1 do
    f (if t.ring > 0 then t.buf.((t.head + i) mod t.ring) else t.buf.(i))
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (Perfetto-compatible)                      *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Microseconds with fixed sub-microsecond precision: deterministic
   decimal formatting, no locale or platform variance. *)
let us ts = Printf.sprintf "%.3f" (ts *. 1e6)

let arg_to_buf b = function
  | S s ->
      Buffer.add_char b '"';
      json_escape b s;
      Buffer.add_char b '"'
  | I i -> Buffer.add_string b (string_of_int i)
  | F f -> Buffer.add_string b (Printf.sprintf "%.17g" f)

let event_to_buf b ev =
  Buffer.add_string b "{\"name\":\"";
  json_escape b ev.name;
  Buffer.add_string b "\",\"cat\":\"";
  json_escape b ev.cat;
  Buffer.add_string b "\",\"ph\":\"";
  (match ev.ph with
  | Span _ -> Buffer.add_char b 'X'
  | Instant -> Buffer.add_char b 'i'
  | Counter _ -> Buffer.add_char b 'C');
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (us ev.ts);
  (match ev.ph with
  | Span dur ->
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us dur)
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Counter _ -> ());
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int ev.tid);
  let args =
    match ev.ph with
    | Counter v -> [ ("value", F v) ]
    | Span _ | Instant -> ev.args
  in
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          json_escape b k;
          Buffer.add_string b "\":";
          arg_to_buf b v)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_chrome_json t =
  let b = Buffer.create (256 * (1 + t.len)) in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  iter
    (fun ev ->
      if !first then first := false else Buffer.add_string b ",\n";
      event_to_buf b ev)
    t;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

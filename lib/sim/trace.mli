(** Deterministic structured tracing.

    Events are stamped with {e simulation time} only — never wall clock —
    so a traced run's event stream is byte-identical across replays and
    across [Sweep] domain counts.  A sink belongs to a single engine
    (there is no global trace state); attach one with
    [Engine.set_tracer].

    Created with [~ring:n > 0] the sink is a bounded flight recorder:
    the most recent [n] events are kept, older ones are overwritten (and
    counted in [dropped]).  The chaos suite dumps such a recorder on
    invariant failure for post-mortem debugging.

    The sink stores events in a compact structure-of-arrays encoding:
    recording through the [intern]-id emitters below allocates nothing,
    and all string formatting (decimal timestamps, JSON escaping) is
    deferred to [to_chrome_json]/[events] flush time. *)

type arg = S of string | I of int | F of float

type phase =
  | Span of float  (** complete span; payload is the duration in seconds *)
  | Instant
  | Counter of float

type event = {
  ts : float;  (** simulation time, seconds *)
  cat : string;  (** dotted category, e.g. ["soil.pcie"] *)
  name : string;
  tid : int;  (** logical track (0 = engine, else a node ordinal) *)
  ph : phase;
  args : (string * arg) list;
}

type t

val create : ?ring:int -> unit -> t
(** [create ()] is an unbounded append sink; [create ~ring:n ()] with
    [n > 0] keeps only the last [n] events (flight recorder). *)

val emit : t -> event -> unit

val span :
  t ->
  ts:float ->
  dur:float ->
  cat:string ->
  name:string ->
  ?tid:int ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** Complete span ("ph":"X"): an operation starting at [ts] lasting
    [dur] seconds. *)

val instant :
  t ->
  ts:float ->
  cat:string ->
  name:string ->
  ?tid:int ->
  ?args:(string * arg) list ->
  unit ->
  unit

val counter : t -> ts:float -> cat:string -> name:string -> value:float -> ?tid:int -> unit -> unit

(** {1 Allocation-free fast path}

    Hot emission sites intern their category / name / argument-key
    strings once (ids are stable for the sink's lifetime, surviving
    [clear]) and then record events without allocating: every field is
    an unboxed float or an immediate int.  Decoding back to [event]
    records — and all JSON formatting — happens at flush time, so the
    emitted Chrome trace is byte-identical to the record-building
    entry points above. *)

val intern : t -> string -> int
(** Intern a string in the sink's table, returning its id.  O(1) after
    the first call; never allocates for a string already interned. *)

val instant0 : t -> ts:float -> cat:int -> name:int -> tid:int -> unit

val instant_i : t -> ts:float -> cat:int -> name:int -> tid:int -> k:int -> int -> unit
(** One [I] argument under key [k]. *)

val instant_f : t -> ts:float -> cat:int -> name:int -> tid:int -> k:int -> float -> unit

val instant_ff :
  t -> ts:float -> cat:int -> name:int -> tid:int -> k0:int -> float -> k1:int -> float -> unit

val instant_if :
  t -> ts:float -> cat:int -> name:int -> tid:int -> k0:int -> int -> k1:int -> float -> unit

val instant_is :
  t -> ts:float -> cat:int -> name:int -> tid:int -> k0:int -> int -> k1:int -> int -> unit
(** [I] then [S] argument; the string is passed as an interned id. *)

val instant_si :
  t -> ts:float -> cat:int -> name:int -> tid:int -> k0:int -> int -> k1:int -> int -> unit
(** [S] (interned id) then [I] argument. *)

val span0 : t -> ts:float -> dur:float -> cat:int -> name:int -> tid:int -> unit

val span_f : t -> ts:float -> dur:float -> cat:int -> name:int -> tid:int -> k:int -> float -> unit

val span_i : t -> ts:float -> dur:float -> cat:int -> name:int -> tid:int -> k:int -> int -> unit

val count : t -> int
(** Events currently held (≤ ring size for flight recorders). *)

val dropped : t -> int
(** Events overwritten by a full ring; always 0 for unbounded sinks. *)

val events : t -> event list
(** Oldest first. *)

val iter : (event -> unit) -> t -> unit
val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON ({["{\"traceEvents\":[...]}"]}), loadable
    in Perfetto.  Timestamps are microseconds with fixed 3-decimal
    formatting, so equal event streams render byte-identical JSON. *)

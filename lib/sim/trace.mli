(** Deterministic structured tracing.

    Events are stamped with {e simulation time} only — never wall clock —
    so a traced run's event stream is byte-identical across replays and
    across [Sweep] domain counts.  A sink belongs to a single engine
    (there is no global trace state); attach one with
    [Engine.set_tracer].

    Created with [~ring:n > 0] the sink is a bounded flight recorder:
    the most recent [n] events are kept, older ones are overwritten (and
    counted in [dropped]).  The chaos suite dumps such a recorder on
    invariant failure for post-mortem debugging. *)

type arg = S of string | I of int | F of float

type phase =
  | Span of float  (** complete span; payload is the duration in seconds *)
  | Instant
  | Counter of float

type event = {
  ts : float;  (** simulation time, seconds *)
  cat : string;  (** dotted category, e.g. ["soil.pcie"] *)
  name : string;
  tid : int;  (** logical track (0 = engine, else a node ordinal) *)
  ph : phase;
  args : (string * arg) list;
}

type t

val create : ?ring:int -> unit -> t
(** [create ()] is an unbounded append sink; [create ~ring:n ()] with
    [n > 0] keeps only the last [n] events (flight recorder). *)

val emit : t -> event -> unit

val span :
  t ->
  ts:float ->
  dur:float ->
  cat:string ->
  name:string ->
  ?tid:int ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** Complete span ("ph":"X"): an operation starting at [ts] lasting
    [dur] seconds. *)

val instant :
  t ->
  ts:float ->
  cat:string ->
  name:string ->
  ?tid:int ->
  ?args:(string * arg) list ->
  unit ->
  unit

val counter : t -> ts:float -> cat:string -> name:string -> value:float -> ?tid:int -> unit -> unit

val count : t -> int
(** Events currently held (≤ ring size for flight recorders). *)

val dropped : t -> int
(** Events overwritten by a full ring; always 0 for unbounded sinks. *)

val events : t -> event list
(** Oldest first. *)

val iter : (event -> unit) -> t -> unit
val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON ({["{\"traceEvents\":[...]}"]}), loadable
    in Perfetto.  Timestamps are microseconds with fixed 3-decimal
    formatting, so equal event streams render byte-identical JSON. *)

module Value = Farm_almanac.Value
module Harvester = Farm_runtime.Harvester

(* DDoS: placed where traffic for the protected prefix is received; counts
   distinct sources hitting the prefix per window.  Crossing the source
   threshold triggers a local drop rule (quench) and a harvester alert;
   the harvester can lift the mitigation (recv bool). *)
let ddos_source =
  {|
machine DDoS {
  place any receiver dstIP "10.2.0.0/16" range <= 1;
  probe pkts = Probe { .ival = 0.001, .what = dstIP "10.2.0.0/16" };
  time win = Time { .ival = 0.5 };
  external long srcLimit = 50;
  external string protected = "10.2.0.0/16";
  list sources = [];
  state observe {
    util (res) {
      if (res.vCPU >= 0.2 and res.RAM >= 64) then {
        return min(15 * res.vCPU, 12);
      }
    }
    when (pkts as p) do {
      if (not contains_elem(sources, p.srcIP)) then {
        sources = append(sources, p.srcIP);
      }
      if (size(sources) > srcLimit) then {
        transit mitigating;
      }
    }
    when (win as t) do {
      sources = [];
    }
  }
  state mitigating {
    util (res) { return 100; }
    when (enter) do {
      send size(sources) to harvester;
      addTCAMRule(mkRule(dstIP protected, drop_action()));
      sources = [];
    }
    when (recv bool lift from harvester) do {
      if (lift) then {
        removeTCAMRule(dstIP protected);
        transit observe;
      }
    }
  }
}
|}

(* harvester: confirms mitigation across switches and lifts it after the
   attack subsides (no new alerts for a few seconds) *)
let ddos_harvester () =
  let last_alert = ref neg_infinity in
  let armed = ref false in
  { Harvester.on_start = (fun _ -> ());
    on_message =
      (fun ctx ~from_switch:_ v ->
        match v with
        | Value.Num _ ->
            last_alert := ctx.now ();
            if not !armed then begin
              armed := true;
              ctx.log "ddos: mitigation armed network-wide"
            end
            else if ctx.now () -. !last_alert > 3. then begin
              (* attack subsided: lift the mitigation everywhere *)
              ctx.broadcast (Value.Bool true);
              armed := false
            end
        | _ -> ()) }

let ddos =
  { Task_common.name = "ddos";
    description =
      "distinct-source flood detection on the receiver leaf with local \
       drop-rule quench";
    source = ddos_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = ddos_harvester;
    harvester_loc = 30;
    adaptive = [] }

(* FloodDefender (Table I's largest entry): protects the SDN control plane
   against table-miss floods.  Four states: observe (SYN-rate watch),
   defend (protecting rules + attacker tracking), monitor (verify the
   flood is contained, shed residual load), recover (clean up, report
   statistics).  Coordinates with the harvester which arms neighbouring
   switches. *)
let flood_defender_source =
  Task_common.stats_helpers
  ^ {|
machine FloodDefender {
  place all;
  probe synPkts = Probe { .ival = 0.002, .what = port ANY };
  time win = Time { .ival = 0.25 };
  external long synLimit = 30;
  external long residualLimit = 5;
  long synSeen = 0;
  long ackSeen = 0;
  list attackers = [];
  state observe {
    util (res) {
      if (res.vCPU >= 0.3 and res.RAM >= 128 and res.TCAM >= 8) then {
        return min(12 * res.vCPU, 15);
      }
    }
    when (synPkts as p) do {
      if (p.syn and not p.ack) then {
        synSeen = synSeen + 1;
        if (not contains_elem(attackers, p.srcIP)) then {
          attackers = append(attackers, p.srcIP);
        }
      }
      if (p.syn and p.ack) then {
        ackSeen = ackSeen + 1;
      }
    }
    when (win as t) do {
      if (synSeen - ackSeen > synLimit) then {
        transit defend;
      }
      synSeen = 0;
      ackSeen = 0;
      attackers = [];
    }
  }
  state defend {
    util (res) { return 80; }
    when (enter) do {
      // shield the control plane: rate-limit table-miss traffic and
      // drop the tracked attackers locally
      addTCAMRule(mkRule(port ANY, rate_limit_action(100000)));
      long i = 0;
      while (i < size(attackers) and i < 16) {
        addTCAMRule(mkRule(srcIP nth(attackers, i), drop_action()));
        i = i + 1;
      }
      send attackers to harvester;
      transit monitor;
    }
  }
  state monitor {
    util (res) { return 60; }
    when (synPkts as p) do {
      if (p.syn and not p.ack) then {
        synSeen = synSeen + 1;
      }
    }
    when (win as t) do {
      if (synSeen <= residualLimit) then {
        transit recover;
      }
      if (synSeen > synLimit) then {
        // flood still strong: escalate to the harvester
        send synSeen to harvester;
      }
      synSeen = 0;
    }
  }
  state recover {
    util (res) { return 40; }
    when (enter) do {
      long i = 0;
      while (i < size(attackers) and i < 16) {
        removeTCAMRule(srcIP nth(attackers, i));
        i = i + 1;
      }
      removeTCAMRule(port ANY);
      send "recovered" to harvester;
      attackers = [];
      synSeen = 0;
      ackSeen = 0;
      transit observe;
    }
  }
  when (recv long newLimit from harvester) do {
    synLimit = newLimit;
  }
}
|}

(* harvester: when one switch defends, arm the others with a lower limit *)
let flood_defender_harvester () =
  let defended = ref false in
  { Harvester.on_start = (fun _ -> ());
    on_message =
      (fun ctx ~from_switch:_ v ->
        match v with
        | Value.List _ when not !defended ->
            defended := true;
            ctx.broadcast (Value.Num 15.)
        | Value.Str _ ->
            (* a switch recovered: relax the network-wide limit again *)
            defended := false;
            ctx.broadcast (Value.Num 30.)
        | _ -> ()) }

let flood_defender =
  { Task_common.name = "flood-defender";
    description =
      "4-state SDN control-plane flood protection with local shields and \
       network-wide escalation";
    source = flood_defender_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = flood_defender_harvester;
    harvester_loc = 35;
    adaptive = [] }

module Value = Farm_almanac.Value
module Harvester = Farm_runtime.Harvester

(* The HH seed, following the paper's List. 2: two states, polling of all
   port counters with a resource-dependent utility, local TCAM reaction,
   machine-level recv events for threshold/action retuning. *)
let hh_source_at accuracy =
  Task_common.stats_helpers
  ^ Printf.sprintf {|
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = %g, .what = port ANY
  };
  external float threshold = 1000000;
  external float interval = 0.001;
  external action hitterAction;
  list prev = [];
  list hitters = [];
  list reported = [];
  state observe {
    util (res) {
      if (res.vCPU >= 0.05 and res.RAM >= 16) then {
        return min(20 * res.vCPU, 10);
      }
    }
    when (pollStats as stats) do {
      hitters = rate_above(stats, prev, threshold * interval);
      prev = stats_list(stats);
      // selection-centric: only changes of the HH set leave the switch
      if (not (hitters == reported)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      reported = hitters;
      if (not is_list_empty(hitters)) then {
        addTCAMRule(mkRule(port ANY, hitterAction));
      }
      transit observe;
    }
  }
  when (recv float newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
|} accuracy

let hh_source = hh_source_at 0.001

(* Harvester: collects hitter reports; when many switches report at once
   (high overall load) it raises the threshold 2x network-wide, and it can
   push a new mitigation action. *)
let hh_harvester base_threshold () =
  let recent = ref [] in
  { Harvester.on_start = (fun _ -> ());
    on_message =
      (fun ctx ~from_switch:_ v ->
        match v with
        | Value.List _ ->
            let now = ctx.now () in
            recent := now :: List.filter (fun t -> now -. t < 1.) !recent;
            if List.length !recent > 5 then begin
              (* network-wide surge: desensitize all seeds *)
              ctx.broadcast (Value.Num (base_threshold *. 2.));
              recent := []
            end
        | _ -> ()) }

let hh_at ~accuracy =
  { Task_common.name = "heavy-hitter";
    description = "per-port heavy-hitter detection with local QoS reaction";
    source = hh_source_at accuracy;
    externals =
      [ ("HH",
         [ ("threshold", Value.Num 1e6); ("interval", Value.Num accuracy);
           ("hitterAction", Value.Action (Farm_net.Tcam.Set_qos 1)) ]) ];
    builtins = [];
    extra_sigs = [];
    harvester = hh_harvester 1e6;
    harvester_loc = 12;
    (* degraded mode stretches the port-counter poll: HH tolerates a
       coarser rate (it only loses detection latency), so it is the first
       fidelity to trade away under pressure *)
    adaptive = [ "pollStats" ] }

let hh =
  { Task_common.name = "heavy-hitter";
    description = "per-port heavy-hitter detection with local QoS reaction";
    source = hh_source;
    externals =
      [ ("HH",
         [ ("threshold", Value.Num 1e6); ("interval", Value.Num 1e-3);
           ("hitterAction", Value.Action (Farm_net.Tcam.Set_qos 1)) ]) ];
    builtins = [];
    extra_sigs = [];
    harvester = hh_harvester 1e6;
    harvester_loc = 12;
    (* degraded mode stretches the port-counter poll: HH tolerates a
       coarser rate (it only loses detection latency), so it is the first
       fidelity to trade away under pressure *)
    adaptive = [ "pollStats" ] }

(* HHH by inheritance: only the detection state changes — hitters are sent
   together with the aggregation level so the harvester can roll single
   ports up into the port-group hierarchy. *)
let hhh_inherited_source =
  hh_source
  ^ {|
machine HHH extends HH {
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      list report = [];
      long i = 0;
      while (i < size(hitters)) {
        report = append(report, nth(hitters, i));
        report = append(report, floor(nth(hitters, i) / 4));
        i = i + 1;
      }
      send report to harvester;
      addTCAMRule(mkRule(port ANY, hitterAction));
      transit observe;
    }
  }
}
|}

(* the harvester aggregates (port, group) pairs into hierarchy counts *)
let hhh_harvester () =
  let groups : (int, int) Hashtbl.t = Hashtbl.create 16 in
  ignore groups;
  { Harvester.on_start = (fun _ -> ());
    on_message =
      (fun _ ~from_switch:_ v ->
        match v with
        | Value.List items ->
            List.iteri
              (fun i x ->
                if i mod 2 = 1 then
                  match x with
                  | Value.Num g ->
                      let g = int_of_float g in
                      Hashtbl.replace groups g
                        (1 + Option.value (Hashtbl.find_opt groups g) ~default:0)
                  | _ -> ())
              items
        | _ -> ()) }

let hhh_inherited =
  { Task_common.name = "hierarchical-heavy-hitter-inherited";
    description = "HHH as a 1-state override of the HH machine";
    source = hhh_inherited_source;
    externals =
      (* hitterAction must be bound in both machines: HHH inherits the
         HHdetected TCAM reaction from HH (caught by lint L106) *)
      [ ("HH",
         [ ("threshold", Value.Num 1e6); ("interval", Value.Num 1e-3);
           ("hitterAction", Value.Action (Farm_net.Tcam.Set_qos 1)) ]);
        ("HHH",
         [ ("threshold", Value.Num 1e6); ("interval", Value.Num 1e-3);
           ("hitterAction", Value.Action (Farm_net.Tcam.Set_qos 1)) ]) ];
    builtins = [];
    extra_sigs = [];
    harvester = hhh_harvester;
    harvester_loc = 26;
    adaptive = [] }

(* Standalone HHH over IP prefixes: three polls at /8, /16 and /24
   granularity; the deepest prefix whose delta crosses the threshold is
   reported (hierarchy resolution happens on the switch). *)
let hhh_source =
  {|
machine HHHSolo {
  place all;
  poll coarse = Poll { .ival = 0.01, .what = dstIP "10.0.0.0/8" };
  poll mid = Poll { .ival = 0.01, .what = dstIP "10.2.0.0/16" };
  poll fine = Poll { .ival = 0.01, .what = dstIP "10.2.1.0/24" };
  external float threshold = 1000000;
  external float interval = 0.01;
  float prevCoarse = 0;
  float prevMid = 0;
  float prevFine = 0;
  long level = 0;
  state observe {
    util (res) {
      if (res.vCPU >= 0.1) then { return min(10 * res.vCPU, 8); }
    }
    when (coarse as s) do {
      if (stat(s, 0) - prevCoarse > threshold * interval) then {
        level = max(level, 1);
      }
      prevCoarse = stat(s, 0);
      if (level > 0) then { transit report; }
    }
    when (mid as s) do {
      if (stat(s, 0) - prevMid > threshold * interval) then {
        level = max(level, 2);
      }
      prevMid = stat(s, 0);
    }
    when (fine as s) do {
      if (stat(s, 0) - prevFine > threshold * interval) then {
        level = max(level, 3);
      }
      prevFine = stat(s, 0);
    }
  }
  state report {
    util (res) { return 50; }
    when (enter) do {
      send level to harvester;
      level = 0;
      transit observe;
    }
  }
}
|}

let hhh =
  { Task_common.name = "hierarchical-heavy-hitter";
    description = "standalone HHH over a /8-/16-/24 prefix hierarchy";
    source = hhh_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 26;
    adaptive = [] }

module Value = Farm_almanac.Value
module Harvester = Farm_runtime.Harvester

(* Link failure: a port that was carrying traffic and whose counter stops
   increasing is reported; the harvester performs the management action
   (rerouting via other seeds). *)
let link_failure_source =
  Task_common.stats_helpers
  ^ {|
machine LinkFailure {
  place all;
  poll counters = Poll { .ival = 0.05, .what = port ANY };
  list prev = [];
  long deadPort = 0;
  state watching {
    util (res) {
      if (res.vCPU >= 0.05) then { return min(4 * res.vCPU, 4); }
    }
    when (counters as stats) do {
      if (size(prev) > 0) then {
        long i = 0;
        while (i < stats_size(stats)) {
          float before = nth(prev, i);
          if (before > 0 and stat(stats, i) == before) then {
            deadPort = i;
            transit failed;
          }
          i = i + 1;
        }
      }
      prev = stats_list(stats);
    }
  }
  state failed {
    util (res) { return 90; }
    when (enter) do {
      send deadPort to harvester;
      transit watching;
    }
  }
}
|}

(* harvester: on a failure report, instruct every other seed's switch to
   steer around the dead link (management, not just monitoring) *)
let link_failure_harvester () =
  { Harvester.on_start = (fun _ -> ());
    on_message =
      (fun ctx ~from_switch v ->
        match v with
        | Value.Num _ ->
            ctx.log (Printf.sprintf "link failure at switch %d" from_switch);
            ctx.broadcast (Value.Num (float_of_int from_switch))
        | _ -> ()) }

let link_failure =
  { Task_common.name = "link-failure";
    description = "stalled active port counters reveal a dead link";
    source = link_failure_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = link_failure_harvester;
    harvester_loc = 8;
    adaptive = [] }

(* Traffic change: EWMA of the total rate; large deviation → report.  The
   paper's 7-line example. *)
let traffic_change_source =
  {|
machine TrafficChange {
  place all;
  poll counters = Poll { .ival = 0.1, .what = port ANY };
  external float factor = 3;
  float ewma = 0;
  float prev = 0;
  long warmup = 0;
  state watching {
    when (counters as stats) do {
      float delta = stats_sum(stats) - prev;
      prev = stats_sum(stats);
      if (warmup >= 8 and delta > factor * ewma) then {
        send delta to harvester;
      }
      ewma = (0.875 * ewma) + (0.125 * delta);
      warmup = warmup + 1;
    }
  }
}
|}

let traffic_change =
  { Task_common.name = "traffic-change";
    description = "EWMA deviation of the aggregate rate";
    source = traffic_change_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 5;
    adaptive = [] }

(* Flow size distribution: histogram of sampled packet flow keys into
   size buckets, shipped each window. *)
let flow_size_distribution_source =
  {|
machine FlowSizeDistr {
  place all;
  probe pkts = Probe { .ival = 0.002, .what = port ANY };
  time win = Time { .ival = 2 };
  list keys = [];
  list counts = [];
  state sampling {
    util (res) {
      if (res.vCPU >= 0.1 and res.RAM >= 64) then {
        return min(5 * res.vCPU, 5);
      }
    }
    when (pkts as p) do {
      string key = p.srcIP;
      long i = index_of(keys, key);
      if (i < 0) then {
        keys = append(keys, key);
        counts = append(counts, 1);
      } else {
        counts = set_nth(counts, i, nth(counts, i) + 1);
      }
    }
    when (win as t) do {
      // bucketize: how many flows saw 1, 2-3, 4-7, 8+ samples
      list histo = [0, 0, 0, 0];
      long i = 0;
      while (i < size(counts)) {
        long c = nth(counts, i);
        if (c <= 1) then { histo = set_nth(histo, 0, nth(histo, 0) + 1); }
        else { if (c <= 3) then { histo = set_nth(histo, 1, nth(histo, 1) + 1); }
        else { if (c <= 7) then { histo = set_nth(histo, 2, nth(histo, 2) + 1); }
        else { histo = set_nth(histo, 3, nth(histo, 3) + 1); } } }
        i = i + 1;
      }
      send histo to harvester;
      keys = [];
      counts = [];
    }
  }
}
|}

let flow_size_distribution =
  { Task_common.name = "flow-size-distribution";
    description = "per-window sampled flow size histogram";
    source = flow_size_distribution_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 15;
    adaptive = [] }

(* Entropy estimation: Shannon entropy of sampled source addresses per
   window — low entropy flags concentration (e.g. one loud source). *)
let entropy_estimation_source =
  {|
machine EntropyEstim {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = port ANY };
  time win = Time { .ival = 1 };
  list keys = [];
  list counts = [];
  long total = 0;
  state estimating {
    util (res) {
      if (res.vCPU >= 0.25 and res.RAM >= 64) then {
        return min(10 * res.vCPU, 10);
      }
    }
    when (pkts as p) do {
      long i = index_of(keys, p.srcIP);
      if (i < 0) then {
        keys = append(keys, p.srcIP);
        counts = append(counts, 1);
      } else {
        counts = set_nth(counts, i, nth(counts, i) + 1);
      }
      total = total + 1;
    }
    when (win as t) do {
      if (total > 0) then {
        float h = 0;
        long i = 0;
        while (i < size(counts)) {
          float pr = nth(counts, i) / total;
          h = h - (pr * log2(pr));
          i = i + 1;
        }
        send h to harvester;
      }
      keys = [];
      counts = [];
      total = 0;
    }
  }
}
|}

let entropy_estimation =
  { Task_common.name = "entropy-estimation";
    description = "Shannon entropy of sampled sources per window";
    source = entropy_estimation_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 15;
    adaptive = [] }

(* The CPU-intensive ML task of §VI-A c: poll statistics, run SVR
   (matrix-matrix multiplications) through exec(), report the prediction.
   [iterations] controls how many multiplication passes each activation
   performs (Fig. 6d runs 10 iterations at 1/10 the polling rate). *)
let ml_source ~iterations ~accuracy =
  Printf.sprintf
    {|
machine MlPredict {
  place all;
  poll features = Poll { .ival = %g, .what = port ANY };
  state predicting {
    util (res) {
      if (res.vCPU >= 0.5 and res.RAM >= 512) then {
        return min(8 * res.vCPU, 30);
      }
    }
    when (features as stats) do {
      float prediction = exec("svr %d");
      if (prediction > 0) then {
        send prediction to harvester;
      }
    }
  }
}
|}
    accuracy iterations

let ml_task ~iterations ~accuracy =
  { Task_common.name = Printf.sprintf "ml-predict-x%d" iterations;
    description =
      "support-vector-regression prediction on polled statistics (matrix \
       multiply via exec)";
    source = ml_source ~iterations ~accuracy;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 6;
    adaptive = [] }

(* Superspreader: a source talking to many distinct destinations within a
   window (worm propagation signature). *)
let superspreader_source =
  {|
machine Superspreader {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = port ANY };
  time win = Time { .ival = 1 };
  external long fanoutLimit = 30;
  list srcs = [];
  list fanouts = [];
  string spreader = "";
  state observe {
    util (res) {
      if (res.vCPU >= 0.2 and res.RAM >= 64) then {
        return min(12 * res.vCPU, 10);
      }
    }
    when (pkts as p) do {
      long i = index_of(srcs, p.srcIP);
      if (i < 0) then {
        srcs = append(srcs, p.srcIP);
        fanouts = append(fanouts, [p.dstIP]);
      } else {
        list ds = nth(fanouts, i);
        if (not contains_elem(ds, p.dstIP)) then {
          ds = append(ds, p.dstIP);
          fanouts = set_nth(fanouts, i, ds);
          if (size(ds) > fanoutLimit) then {
            spreader = p.srcIP;
            transit spotted;
          }
        }
      }
    }
    when (win as t) do {
      srcs = [];
      fanouts = [];
    }
  }
  state spotted {
    util (res) { return 80; }
    when (enter) do {
      send spreader to harvester;
      addTCAMRule(mkRule(srcIP spreader, rate_limit_action(10000)));
      srcs = [];
      fanouts = [];
      transit observe;
    }
  }
}
|}

let superspreader =
  { Task_common.name = "superspreader";
    description = "distinct-destination fanout per source";
    source = superspreader_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 21;
    adaptive = [] }

(* SSH brute force: many short connections to port 22 from one source. *)
let ssh_brute_force_source =
  {|
machine SshBruteForce {
  place all;
  probe ssh = Probe { .ival = 0.002, .what = dstPort 22 };
  time win = Time { .ival = 2 };
  external long attemptLimit = 10;
  list srcs = [];
  list counts = [];
  string attacker = "";
  state observe {
    util (res) {
      if (res.vCPU >= 0.1) then { return min(6 * res.vCPU, 6); }
    }
    when (ssh as p) do {
      if (p.syn) then {
        long i = index_of(srcs, p.srcIP);
        if (i < 0) then {
          srcs = append(srcs, p.srcIP);
          counts = append(counts, 1);
        } else {
          counts = set_nth(counts, i, nth(counts, i) + 1);
          if (nth(counts, i) > attemptLimit) then {
            attacker = p.srcIP;
            transit blocking;
          }
        }
      }
    }
    when (win as t) do {
      srcs = [];
      counts = [];
    }
  }
  state blocking {
    util (res) { return 60; }
    when (enter) do {
      send attacker to harvester;
      addTCAMRule(mkRule(srcIP attacker and dstPort 22, drop_action()));
      srcs = [];
      counts = [];
      transit observe;
    }
  }
}
|}

let ssh_brute_force =
  { Task_common.name = "ssh-brute-force";
    description = "repeated SSH connection attempts from one source";
    source = ssh_brute_force_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 9;
    adaptive = [] }

(* Port scan: one source touching many destination ports of one host
   (sequential-hypothesis-style counting). *)
let port_scan_source =
  {|
machine PortScan {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = proto "tcp" };
  time win = Time { .ival = 1 };
  external long portLimit = 15;
  list pairs = [];
  list ports = [];
  string scanner = "";
  state observe {
    util (res) {
      if (res.vCPU >= 0.15 and res.RAM >= 32) then {
        return min(9 * res.vCPU, 9);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        string key = pair_key(p.srcIP, p.dstIP);
        long i = index_of(pairs, key);
        if (i < 0) then {
          pairs = append(pairs, key);
          ports = append(ports, [p.dstPort]);
        } else {
          list ps = nth(ports, i);
          if (not contains_elem(ps, p.dstPort)) then {
            ps = append(ps, p.dstPort);
            ports = set_nth(ports, i, ps);
            if (size(ps) > portLimit) then {
              scanner = p.srcIP;
              transit spotted;
            }
          }
        }
      }
    }
    when (win as t) do {
      pairs = [];
      ports = [];
    }
  }
  state spotted {
    util (res) { return 70; }
    when (enter) do {
      send scanner to harvester;
      addTCAMRule(mkRule(srcIP scanner, drop_action()));
      pairs = [];
      ports = [];
      transit observe;
    }
  }
}
|}

let port_scan =
  { Task_common.name = "port-scan";
    description = "distinct destination ports per (src, dst) pair";
    source = port_scan_source;
    externals = [];
    extra_sigs =
      [ ("pair_key",
         { Farm_almanac.Typecheck.args =
             [ Farm_almanac.Typecheck.Ty Farm_almanac.Ast.Tstring;
               Farm_almanac.Typecheck.Ty Farm_almanac.Ast.Tstring ];
           ret = Farm_almanac.Typecheck.Ty Farm_almanac.Ast.Tstring }) ];
    builtins =
      [ ("pair_key",
         fun args ->
           match args with
           | [ Farm_almanac.Value.Str a; Farm_almanac.Value.Str b ] ->
               Farm_almanac.Value.Str (a ^ ">" ^ b)
           | _ -> raise (Farm_almanac.Value.Type_error "pair_key")) ];
    harvester = Task_common.collector;
    harvester_loc = 23;
    adaptive = [] }

(* DNS reflection: amplified UDP responses (sport 53) flooding a victim. *)
let dns_reflection_source =
  {|
machine DnsReflection {
  place all;
  probe dns = Probe { .ival = 0.001, .what = srcPort 53 };
  time win = Time { .ival = 0.5 };
  external long replyLimit = 25;
  list victims = [];
  list counts = [];
  string victim = "";
  state observe {
    util (res) {
      if (res.vCPU >= 0.2 and res.RAM >= 32) then {
        return min(10 * res.vCPU, 10);
      }
    }
    when (dns as p) do {
      if (p.proto == "udp") then {
        long i = index_of(victims, p.dstIP);
        if (i < 0) then {
          victims = append(victims, p.dstIP);
          counts = append(counts, 1);
        } else {
          counts = set_nth(counts, i, nth(counts, i) + 1);
          if (nth(counts, i) > replyLimit) then {
            victim = p.dstIP;
            transit reflecting;
          }
        }
      }
    }
    when (win as t) do {
      victims = [];
      counts = [];
    }
  }
  state reflecting {
    util (res) { return 85; }
    when (enter) do {
      send victim to harvester;
      addTCAMRule(mkRule(srcPort 53 and dstIP victim,
                         rate_limit_action(20000)));
    }
    when (exit) do {
      victims = [];
      counts = [];
    }
    when (win as t) do {
      transit observe;
    }
    when (recv bool lift from harvester) do {
      if (lift) then {
        removeTCAMRule(srcPort 53 and dstIP victim);
        transit observe;
      }
    }
  }
}
|}

let dns_reflection =
  { Task_common.name = "dns-reflection";
    description = "amplified DNS responses flooding a victim";
    source = dns_reflection_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 22;
    adaptive = [] }

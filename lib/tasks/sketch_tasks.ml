module Value = Farm_almanac.Value
module Typecheck = Farm_almanac.Typecheck
module Count_min = Farm_sketches.Count_min
module Hyperloglog = Farm_sketches.Hyperloglog

(* Builtins hold sketch state host-side, keyed by an instance id the seed
   provides (its switch id via [self_switch()]), so co-deployed seeds on
   different switches keep independent sketches. *)

let key_of v = Value.to_string v

let cms_builtins () =
  let tables : (string, Count_min.t) Hashtbl.t = Hashtbl.create 8 in
  let get id =
    match Hashtbl.find_opt tables id with
    | Some t -> t
    | None ->
        let t = Count_min.create ~epsilon:0.01 ~delta:0.01 () in
        Hashtbl.replace tables id t;
        t
  in
  [ ("cms_add",
     fun args ->
       match args with
       | [ id; Value.Str key; Value.Num count ] ->
           Count_min.add (get (key_of id)) ~count key;
           Value.Unit
       | _ -> raise (Value.Type_error "cms_add(id, key, count)"));
    ("cms_estimate",
     fun args ->
       match args with
       | [ id; Value.Str key ] ->
           Value.Num (Count_min.estimate (get (key_of id)) key)
       | _ -> raise (Value.Type_error "cms_estimate(id, key)"));
    ("cms_total",
     fun args ->
       match args with
       | [ id ] -> Value.Num (Count_min.total (get (key_of id)))
       | _ -> raise (Value.Type_error "cms_total(id)"));
    ("cms_reset",
     fun args ->
       match args with
       | [ id ] ->
           Count_min.reset (get (key_of id));
           Value.Unit
       | _ -> raise (Value.Type_error "cms_reset(id)")) ]

let hll_builtins () =
  let tables : (string, Hyperloglog.t) Hashtbl.t = Hashtbl.create 8 in
  let get id =
    match Hashtbl.find_opt tables id with
    | Some t -> t
    | None ->
        let t = Hyperloglog.create ~precision:10 () in
        Hashtbl.replace tables id t;
        t
  in
  [ ("hll_add",
     fun args ->
       match args with
       | [ id; Value.Str key ] ->
           Hyperloglog.add (get (key_of id)) key;
           Value.Unit
       | _ -> raise (Value.Type_error "hll_add(id, key)"));
    ("hll_count",
     fun args ->
       match args with
       | [ id ] -> Value.Num (Hyperloglog.count (get (key_of id)))
       | _ -> raise (Value.Type_error "hll_count(id)"));
    ("hll_reset",
     fun args ->
       match args with
       | [ id ] ->
           Hyperloglog.reset (get (key_of id));
           Value.Unit
       | _ -> raise (Value.Type_error "hll_reset(id)")) ]

let sigty_str = Typecheck.Ty Farm_almanac.Ast.Tstring
let sigty_unit = Typecheck.Ty Farm_almanac.Ast.Tunit

let cms_sigs =
  [ ("cms_add", { Typecheck.args = [ Typecheck.Any; sigty_str; Typecheck.Numeric ];
                  ret = sigty_unit });
    ("cms_estimate",
     { Typecheck.args = [ Typecheck.Any; sigty_str ]; ret = Typecheck.Numeric });
    ("cms_total", { Typecheck.args = [ Typecheck.Any ]; ret = Typecheck.Numeric });
    ("cms_reset", { Typecheck.args = [ Typecheck.Any ]; ret = sigty_unit }) ]

let hll_sigs =
  [ ("hll_add", { Typecheck.args = [ Typecheck.Any; sigty_str ]; ret = sigty_unit });
    ("hll_count", { Typecheck.args = [ Typecheck.Any ]; ret = Typecheck.Numeric });
    ("hll_reset", { Typecheck.args = [ Typecheck.Any ]; ret = sigty_unit }) ]

(* HH via CMS: probe packets, feed destination volume into the sketch; a
   short candidate list of recently seen keys bounds the enumeration
   (sketches cannot list keys); memory stays constant in the flow count. *)
let sketch_hh_source =
  {|
machine SketchHH {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = port ANY };
  time win = Time { .ival = 1 };
  external float volumeLimit = 200000;
  long sw = 0;
  list candidates = [];
  state observe {
    util (res) {
      if (res.vCPU >= 0.1 and res.RAM >= 8) then {
        return min(10 * res.vCPU, 10);
      }
    }
    when (enter) do { sw = self_switch(); }
    when (pkts as p) do {
      cms_add(sw, p.dstIP, p.size);
      if (not contains_elem(candidates, p.dstIP)) then {
        if (size(candidates) < 32) then {
          candidates = append(candidates, p.dstIP);
        }
      }
    }
    when (win as t) do {
      list hitters = [];
      long i = 0;
      while (i < size(candidates)) {
        if (cms_estimate(sw, nth(candidates, i)) > volumeLimit) then {
          hitters = append(hitters, nth(candidates, i));
        }
        i = i + 1;
      }
      if (not is_list_empty(hitters)) then {
        send hitters to harvester;
      }
      cms_reset(sw);
      candidates = [];
    }
  }
}
|}

let sketch_heavy_hitter =
  { Task_common.name = "sketch-heavy-hitter";
    description =
      "heavy hitters via a count-min sketch: constant memory in the flow \
       count";
    source = sketch_hh_source;
    externals = [];
    builtins = cms_builtins ();
    extra_sigs = cms_sigs;
    harvester = Task_common.collector;
    harvester_loc = 6;
    (* the sketch absorbs a slower probe gracefully — estimates get
       noisier instead of the task failing, a natural degraded mode *)
    adaptive = [ "pkts" ] }

(* Superspreader via per-source HLL: distinct destinations per source in
   O(registers) memory. *)
let sketch_superspreader_source =
  {|
machine SketchSpreader {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = port ANY };
  time win = Time { .ival = 1 };
  external float fanoutLimit = 30;
  long sw = 0;
  list sources = [];
  state observe {
    util (res) {
      if (res.vCPU >= 0.1 and res.RAM >= 8) then {
        return min(10 * res.vCPU, 10);
      }
    }
    when (enter) do { sw = self_switch(); }
    when (pkts as p) do {
      string id = str(sw) + ":" + p.srcIP;
      hll_add(id, p.dstIP);
      if (not contains_elem(sources, p.srcIP)) then {
        if (size(sources) < 64) then {
          sources = append(sources, p.srcIP);
        }
      }
    }
    when (win as t) do {
      long i = 0;
      while (i < size(sources)) {
        string id = str(sw) + ":" + nth(sources, i);
        if (hll_count(id) > fanoutLimit) then {
          send nth(sources, i) to harvester;
        }
        hll_reset(id);
        i = i + 1;
      }
      sources = [];
    }
  }
}
|}

let sketch_superspreader =
  { Task_common.name = "sketch-superspreader";
    description =
      "superspreaders via per-source HyperLogLog distinct counting";
    source = sketch_superspreader_source;
    externals = [];
    builtins = hll_builtins ();
    extra_sigs = hll_sigs;
    harvester = Task_common.collector;
    harvester_loc = 6;
    adaptive = [] }

module Value = Farm_almanac.Value
module Harvester = Farm_runtime.Harvester
module Seeder = Farm_runtime.Seeder

let stats_helpers =
  {|
list rate_above(stats cur, list prev, float th) {
  list out = [];
  long i = 0;
  while (i < stats_size(cur)) {
    float p = 0;
    if (i < size(prev)) then { p = nth(prev, i); }
    if (stat(cur, i) - p > th) then { out = append(out, i); }
    i = i + 1;
  }
  return out;
}

list stats_list(stats s) {
  list out = [];
  long i = 0;
  while (i < stats_size(s)) {
    out = append(out, stat(s, i));
    i = i + 1;
  }
  return out;
}
|}

type entry = {
  name : string;
  description : string;
  source : string;
  externals : (string * (string * Value.t) list) list;
  builtins : (string * (Value.t list -> Value.t)) list;
  extra_sigs : (string * Farm_almanac.Typecheck.func_sig) list;
  harvester : unit -> Harvester.spec;
      (* a factory, not a spec: stateful harvesters capture refs, and a
         shared closure would leak state between deployments (breaking
         replay determinism within one process) *)
  harvester_loc : int;
  adaptive : string list;
      (* poll variables the seeds may stretch in degraded mode *)
}

let seed_loc entry =
  String.split_on_char '\n' entry.source
  |> List.filter (fun line ->
         let line = String.trim line in
         String.length line > 0
         && not (String.length line >= 2 && String.sub line 0 2 = "//"))
  |> List.length

let to_task_spec entry =
  { Seeder.ts_name = entry.name;
    ts_source = entry.source;
    ts_externals = entry.externals;
    ts_builtins = entry.builtins;
    ts_extra_sigs = entry.extra_sigs;
    ts_harvester = entry.harvester ();
    ts_adaptive = entry.adaptive }

let collector () = Harvester.collector_spec

(** Shared pieces for the Table I task catalog: reusable Almanac auxiliary
    functions, harvester helpers, and the catalog entry type. *)

module Value := Farm_almanac.Value

(** Almanac helper functions prepended to task sources that need them:
    [rate_above cur prev th] (indices whose counter delta exceeds [th]) and
    [stats_list] (stats → list). *)
val stats_helpers : string

type entry = {
  name : string;
  description : string;
  source : string;  (** full Almanac source (helpers included) *)
  externals : (string * (string * Value.t) list) list;
  builtins : (string * (Value.t list -> Value.t)) list;
  extra_sigs : (string * Farm_almanac.Typecheck.func_sig) list;
  harvester : unit -> Farm_runtime.Harvester.spec;
      (** a factory, not a spec: stateful harvesters capture refs, and a
          shared closure would leak state between deployments *)
  harvester_loc : int;
      (** lines of harvester logic (the paper's Table I "Harv." column) *)
  adaptive : string list;
      (** poll variables the task's seeds may stretch under soil pressure
          (AIMD degraded mode, active only in overload-protected
          deployments); empty = fixed fidelity *)
}

(** Non-blank, non-comment lines of the entry's Almanac source (the
    "Seed" column of Table I). *)
val seed_loc : entry -> int

val to_task_spec : entry -> Farm_runtime.Seeder.task_spec

(** A harvester that just collects seed reports. *)
val collector : unit -> Farm_runtime.Harvester.spec

(* New TCP connections: probe SYN packets, count distinct tuples per
   window, report the count (the NetQRE connection-counting example). *)
let new_tcp_conn_source =
  {|
machine NewTcpConn {
  place all;
  probe pkts = Probe { .ival = 0.002, .what = proto "tcp" };
  time win = Time { .ival = 1 };
  list seen = [];
  state counting {
    util (res) {
      if (res.vCPU >= 0.1) then { return min(5 * res.vCPU, 5); }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        string key = p.srcIP;
        if (not contains_elem(seen, key)) then {
          seen = append(seen, key);
        }
      }
    }
    when (win as t) do {
      send size(seen) to harvester;
      seen = [];
    }
  }
}
|}

let new_tcp_conn =
  { Task_common.name = "new-tcp-connections";
    description = "per-window new TCP connection counting";
    source = new_tcp_conn_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 5;
    adaptive = [] }

(* SYN flood: imbalance between SYNs and SYN-ACKs towards one victim.
   Local reaction: rate-limit traffic to the victim. *)
let tcp_syn_flood_source =
  {|
machine SynFlood {
  place all;
  probe pkts = Probe { .ival = 0.001, .what = proto "tcp" };
  time win = Time { .ival = 0.5 };
  external long imbalanceLimit = 25;
  long syns = 0;
  long synacks = 0;
  string victim = "";
  state observe {
    util (res) {
      if (res.vCPU >= 0.2 and res.RAM >= 32) then {
        return min(10 * res.vCPU, 10);
      }
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then {
        syns = syns + 1;
        victim = p.dstIP;
      }
      if (p.syn and p.ack) then {
        synacks = synacks + 1;
      }
    }
    when (win as t) do {
      if (syns - synacks > imbalanceLimit) then {
        transit flooding;
      }
      syns = 0;
      synacks = 0;
    }
  }
  state flooding {
    util (res) { return 90; }
    when (enter) do {
      send victim to harvester;
      addTCAMRule(mkRule(dstIP victim, rate_limit_action(50000)));
      syns = 0;
      synacks = 0;
    }
    when (win as t) do {
      if (syns - synacks <= imbalanceLimit / 2) then {
        removeTCAMRule(dstIP victim);
        transit observe;
      }
      syns = 0;
      synacks = 0;
    }
    when (pkts as p) do {
      if (p.syn and not p.ack) then { syns = syns + 1; }
      if (p.syn and p.ack) then { synacks = synacks + 1; }
    }
  }
}
|}

let tcp_syn_flood =
  { Task_common.name = "tcp-syn-flood";
    description = "SYN/SYN-ACK imbalance detection with local rate limiting";
    source = tcp_syn_flood_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 18;
    adaptive = [] }

(* Partial TCP flows: tuples that opened but showed no progress within the
   timeout — seen-once sources are reported each window. *)
let partial_tcp_flow_source =
  {|
machine PartialTcpFlow {
  place all;
  probe pkts = Probe { .ival = 0.002, .what = proto "tcp" };
  time sweep = Time { .ival = 2 };
  external long reportLimit = 3;
  list opened = [];
  list progressed = [];
  state tracking {
    util (res) {
      if (res.vCPU >= 0.1 and res.RAM >= 64) then {
        return min(8 * res.vCPU, 8);
      }
    }
    when (pkts as p) do {
      string key = p.srcIP;
      if (p.syn and not p.ack) then {
        if (not contains_elem(opened, key)) then {
          opened = append(opened, key);
        }
      }
      if (not p.syn) then {
        if (not contains_elem(progressed, key)) then {
          progressed = append(progressed, key);
        }
      }
    }
    when (sweep as t) do {
      list partial = [];
      long i = 0;
      while (i < size(opened)) {
        if (not contains_elem(progressed, nth(opened, i))) then {
          partial = append(partial, nth(opened, i));
        }
        i = i + 1;
      }
      if (size(partial) >= reportLimit) then {
        send partial to harvester;
      }
      opened = [];
      progressed = [];
    }
  }
}
|}

let partial_tcp_flow =
  { Task_common.name = "partial-tcp-flow";
    description = "flows that opened but never progressed (half-open scan)";
    source = partial_tcp_flow_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 18;
    adaptive = [] }

(* Slowloris: many concurrent connections to port 80, each with a tiny
   byte rate.  Detected by combining the port-80 counter (low volume) with
   a high distinct-connection count. *)
let slowloris_source =
  {|
machine Slowloris {
  place all;
  probe web = Probe { .ival = 0.005, .what = dstPort 80 };
  poll webBytes = Poll { .ival = 0.1, .what = port 80 };
  time win = Time { .ival = 2 };
  external long connLimit = 20;
  external float volumeLimit = 50000;
  list conns = [];
  float prevBytes = 0;
  float windowBytes = 0;
  state observe {
    util (res) {
      if (res.vCPU >= 0.15 and res.RAM >= 32) then {
        return min(6 * res.vCPU, 6);
      }
    }
    when (web as p) do {
      string key = p.srcIP;
      if (not contains_elem(conns, key)) then {
        conns = append(conns, key);
      }
    }
    when (webBytes as s) do {
      windowBytes = windowBytes + stat(s, 0) - prevBytes;
      prevBytes = stat(s, 0);
    }
    when (win as t) do {
      if (size(conns) >= connLimit and windowBytes <= volumeLimit) then {
        transit attacked;
      }
      conns = [];
      windowBytes = 0;
    }
  }
  state attacked {
    util (res) { return 70; }
    when (enter) do {
      send size(conns) to harvester;
      addTCAMRule(mkRule(dstPort 80, qos_action(3)));
      conns = [];
      transit observe;
    }
  }
}
|}

let slowloris =
  { Task_common.name = "slowloris";
    description =
      "many barely-alive HTTP connections: low volume, high connection count";
    source = slowloris_source;
    externals = [];
    builtins = [];
    extra_sigs = [];
    harvester = Task_common.collector;
    harvester_loc = 29;
    adaptive = [] }

(* Tests for the Almanac DSL: lexer, parser, pretty-printer round-trip,
   type checker (incl. the util restrictions of §III-A f), inheritance,
   static analyses (placement π, utility κ/ε, polling φ_enc) and the
   interpreter running the paper's heavy-hitter seed (List. 2). *)

open Farm_almanac
module Filter = Farm_net.Filter
module Lin = Farm_optim.Lin_expr

(* The paper's List. 2 example, with the auxiliary functions provided by
   the host. *)
let hh_source =
  {|
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10 / res().PCIe, .what = port ANY
  };
  external long threshold = 1000;
  action hitterAction;
  list hitters;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
|}

let hh_extra_sigs =
  [ ("getHH",
     { Typecheck.args = [ Typecheck.Ty Ast.Tstats; Typecheck.Numeric ];
       ret = Typecheck.Ty Ast.Tlist });
    ("setHitterRules",
     { Typecheck.args = [ Typecheck.Ty Ast.Tlist; Typecheck.Ty Ast.Taction ];
       ret = Typecheck.Ty Ast.Tunit }) ]

let parse_hh () = Parser.program hh_source
let check_hh () = Typecheck.check ~extra:hh_extra_sigs (parse_hh ())

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "machine M { long x = 10; } // comment" in
  let kinds = List.map (fun (l : Lexer.located) -> l.token) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
    = [ Token.KW_MACHINE; Token.IDENT "M"; Token.LBRACE; Token.KW_LONG;
        Token.IDENT "x"; Token.ASSIGN; Token.INT 10; Token.SEMI;
        Token.RBRACE; Token.EOF ])

let test_lexer_operators () =
  let toks = Lexer.tokenize "== <> <= >= < > = + - * /" in
  let kinds = List.map (fun (l : Lexer.located) -> l.token) toks in
  Alcotest.(check bool) "operators" true
    (kinds
    = [ Token.EQ; Token.NEQ; Token.LE; Token.GE; Token.LT; Token.GT;
        Token.ASSIGN; Token.PLUS; Token.MINUS; Token.STAR; Token.SLASH;
        Token.EOF ])

let test_lexer_comments_strings () =
  let toks =
    Lexer.tokenize "/* block\ncomment */ \"a string\" 3.25 // rest"
  in
  let kinds = List.map (fun (l : Lexer.located) -> l.token) toks in
  Alcotest.(check bool) "comments skipped" true
    (kinds = [ Token.STRING "a string"; Token.FLOAT 3.25; Token.EOF ])

let test_lexer_scientific_notation () =
  let toks = Lexer.tokenize "1e-3 2.5E6 7e2 3e" in
  let kinds = List.map (fun (l : Lexer.located) -> l.token) toks in
  Alcotest.(check bool) "e-notation floats" true
    (kinds
    = [ Token.FLOAT 1e-3; Token.FLOAT 2.5e6; Token.FLOAT 7e2;
        (* "3e" is an int followed by an identifier *)
        Token.INT 3; Token.IDENT "e"; Token.EOF ])

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Lexer.Error "1:1: unterminated string") (fun () ->
      ignore (Lexer.tokenize "\"oops"));
  (match Lexer.tokenize "x # y" with
  | _ -> Alcotest.fail "expected lexical error"
  | exception Lexer.Error _ -> ())

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check (pair int int)) "a at 1:1" (1, 1) (a.line, a.col);
      Alcotest.(check (pair int int)) "b at 2:3" (2, 3) (b.line, b.col)
  | _ -> Alcotest.fail "expected 3 tokens"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_hh () =
  let p = parse_hh () in
  Alcotest.(check int) "one machine" 1 (List.length p.machines);
  let m = List.hd p.machines in
  Alcotest.(check string) "name" "HH" m.mname;
  Alcotest.(check int) "two states" 2 (List.length m.states);
  Alcotest.(check int) "two machine events" 2 (List.length m.mevents);
  Alcotest.(check int) "three vars" 3 (List.length m.mvars);
  Alcotest.(check int) "one trigger" 1 (List.length m.mtrigs);
  let obs = List.hd m.states in
  Alcotest.(check string) "initial state" "observe" obs.sname;
  Alcotest.(check bool) "has util" true (obs.sutil <> None);
  (* external flag *)
  let th =
    List.find (fun (v : Ast.var_decl) -> v.vname = "threshold") m.mvars
  in
  Alcotest.(check bool) "threshold is external" true th.is_external

let test_parse_expr_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Parser.expression "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3))
    ->
      ()
  | e -> Alcotest.failf "bad precedence: %s" (Pretty.expr_to_string e)

let test_parse_and_or_precedence () =
  (* a or b and c = a or (b and c) *)
  match Parser.expression "x or y and z" with
  | Ast.Binop (Ast.Or, Ast.Var "x", Ast.Binop (Ast.And, _, _)) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Pretty.expr_to_string e)

let test_parse_filter_exprs () =
  (match Parser.expression {|srcIP "10.1.1.4" and dstIP "10.0.1.0/24"|} with
  | Ast.Binop
      ( Ast.And,
        Ast.FilterAtom (Ast.SrcIP, Ast.String "10.1.1.4"),
        Ast.FilterAtom (Ast.DstIP, Ast.String "10.0.1.0/24") ) ->
      ()
  | e -> Alcotest.failf "bad filter parse: %s" (Pretty.expr_to_string e));
  match Parser.expression "port ANY" with
  | Ast.FilterAtom (Ast.PortF, Ast.AnyLit) -> ()
  | e -> Alcotest.failf "bad ANY parse: %s" (Pretty.expr_to_string e)

let test_parse_struct_lit () =
  match Parser.expression {|Poll { .ival = 10, .what = port 80 }|} with
  | Ast.StructLit ("Poll", [ ("ival", Ast.Int 10); ("what", _) ]) -> ()
  | e -> Alcotest.failf "bad struct parse: %s" (Pretty.expr_to_string e)

let test_parse_place_variants () =
  let src q =
    Printf.sprintf "machine M { %s long x; state s { } }" q
  in
  let place_of q =
    let p = Parser.program (src q) in
    (List.hd p.machines).places
  in
  (match place_of "place all;" with
  | [ { Ast.pquant = Ast.QAll; pconstraint = Ast.Anywhere; _ } ] -> ()
  | _ -> Alcotest.fail "place all");
  (match place_of "place any 1, 2, 3;" with
  | [ { Ast.pquant = Ast.QAny; pconstraint = Ast.At_nodes [ _; _; _ ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "place any nodes");
  match place_of {|place any receiver srcIP "10.1.1.4" range <= 1;|} with
  | [ { Ast.pquant = Ast.QAny;
        pconstraint =
          Ast.On_range { role = Ast.Receiver; pfilter = Some _;
                         rop = Ast.Le; rbound = Ast.Int 1 };
        _ } ] ->
      ()
  | _ -> Alcotest.fail "place range"

let test_parse_fundec () =
  let p =
    Parser.program
      {|
long double_it(long x) { return x * 2; }
machine M { long y; state s { } }
|}
  in
  Alcotest.(check int) "one function" 1 (List.length p.funcs);
  let f = List.hd p.funcs in
  Alcotest.(check string) "name" "double_it" f.fname;
  Alcotest.(check int) "one param" 1 (List.length f.fparams)

let test_parse_else_if_chain () =
  let p =
    Parser.program
      {|machine M { long x; state s { when (enter) do {
          if (x == 1) then { x = 10; }
          else if (x == 2) then { x = 20; }
          else { x = 30; }
        } } }|}
  in
  let m = List.hd p.machines in
  match (List.hd m.states).sevents with
  | [ { body =
          [ { Ast.sk =
                Ast.If
                  ( _, _,
                    [ { Ast.sk =
                          Ast.If
                            (_, _, [ { Ast.sk = Ast.Assign ("x", _); _ } ]);
                        _ } ] );
              _ } ];
        _ } ] ->
      ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_string_concat () =
  let p =
    Typecheck.check
      (Parser.program
         {|machine M { string s = "a" + "b";
           state q { when (enter) do { s = s + "!"; } } }|})
  in
  let t = Interp.create ~program:p ~machine:"M" Interp.null_host in
  Interp.start t;
  match Interp.var t "s" with
  | Some (Value.Str v) -> Alcotest.(check string) "concat" "ab!" v
  | _ -> Alcotest.fail "s unbound"

let test_parse_errors () =
  let expect_error src =
    match Parser.program src with
    | _ -> Alcotest.failf "expected syntax error in %S" src
    | exception Parser.Error _ -> ()
  in
  expect_error "machine { }";
  expect_error "machine M { state s { when (enter) { } } }";
  (* missing do *)
  expect_error "machine M { place; }";
  expect_error "machine M state s { }"

(* round-trip: parse -> pretty -> parse yields the same AST *)
let test_roundtrip_small_floats () =
  (* the lexer has no exponent notation: tiny ivals must still round-trip *)
  List.iter
    (fun f ->
      let e = Ast.Float f in
      let s = Pretty.expr_to_string e in
      match Parser.expression s with
      | Ast.Float f' ->
          Alcotest.(check bool)
            (Printf.sprintf "%g round-trips via %s" f s)
            true
            (Float.abs (f -. f') <= Float.abs f *. 1e-12)
      | _ -> Alcotest.failf "%s did not parse as a float" s)
    [ 0.001; 1e-5; 2.5e-7; 123.456; 0.1 ]

let test_roundtrip_hh () =
  let p1 = parse_hh () in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try Parser.program printed
    with Parser.Error m ->
      Alcotest.failf "re-parse failed: %s\n%s" m printed
  in
  Alcotest.(check bool) "round trip" true
    (Ast.strip_pos p1 = Ast.strip_pos p2)

(* expression round-trip property over generated expressions *)
let gen_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.Int i) (int_range 0 100);
        map (fun b -> Ast.Bool b) bool;
        return (Ast.Var "x");
        return (Ast.Var "y");
        map (fun s -> Ast.String s) (string_size ~gen:(char_range 'a' 'z') (return 3)) ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          map2
            (fun op (a, b) -> Ast.Binop (op, a, b))
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Le; Ast.Eq ])
            (pair (go (depth - 1)) (go (depth - 1)));
          map (fun a -> Ast.Unop (Ast.Not, a)) (go (depth - 1));
          map (fun a -> Ast.Call ("f", [ a ])) (go (depth - 1));
          map (fun a -> Ast.Field (a, "g")) (go (depth - 1)) ]
  in
  go 4

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expression pretty/parse round-trip" ~count:300
    gen_expr (fun e ->
      let s = Pretty.expr_to_string e in
      match Parser.expression s with
      | e' -> e = e'
      | exception Parser.Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Typecheck                                                           *)
(* ------------------------------------------------------------------ *)

let test_typecheck_hh () = ignore (check_hh ())

let expect_type_error ?(extra = []) src frag =
  match Typecheck.check_result ~extra (Parser.program src) with
  | Ok _ -> Alcotest.failf "expected type error mentioning %S" frag
  | Error m ->
      let contains =
        let lm = String.lowercase_ascii m
        and lf = String.lowercase_ascii frag in
        let n = String.length lf in
        let found = ref false in
        for i = 0 to String.length lm - n do
          if String.sub lm i n = lf then found := true
        done;
        !found
      in
      if not contains then
        Alcotest.failf "error %S does not mention %S" m frag

let test_typecheck_unbound () =
  expect_type_error
    "machine M { long x; state s { when (enter) do { x = yy; } } }"
    "unbound variable yy"

let test_typecheck_bad_transit () =
  expect_type_error
    "machine M { long x; state s { when (enter) do { transit nowhere; } } }"
    "unknown state"

let test_typecheck_type_mismatch () =
  expect_type_error
    {|machine M { long x; state s { when (enter) do { x = "hi"; } } }|}
    "assigning string"

let test_typecheck_util_restrictions () =
  (* while in util *)
  expect_type_error
    {|machine M { long x; state s {
        util (r) { while (true) { } return 1; } } }|}
    "util";
  (* call other than min/max *)
  expect_type_error
    {|machine M { long x; state s {
        util (r) { return size([]); } } }|}
    "min and max";
  (* send in util *)
  expect_type_error
    {|machine M { long x; state s {
        util (r) { send 1 to harvester; return 1; } } }|}
    "util";
  (* < is not in the allowed op set *)
  expect_type_error
    {|machine M { long x; state s {
        util (r) { if (r.vCPU < 1) then { return 1; } return 2; } } }|}
    "not allowed in util"

let test_typecheck_unknown_resource () =
  expect_type_error
    {|machine M { long x; state s {
        util (r) { if (r.GPU >= 1) then { return 1; } return 0; } } }|}
    "unknown resource"

let test_typecheck_rejects_string_arith () =
  expect_type_error
    {|machine M { string s; state q { when (enter) do { s = s - "x"; } } }|}
    "arithmetic"

let test_typecheck_duplicate_state () =
  expect_type_error "machine M { long x; state s { } state s { } }"
    "duplicate state"

let test_typecheck_trigger_event () =
  expect_type_error
    {|machine M { long x; state s { when (noSuchTrigger as v) do { } } }|}
    "unknown trigger"

(* inheritance *)
let hhh_source =
  hh_source
  ^ {|
machine HHH extends HH {
  state HHdetected {
    util (res) { return 200; }
    when (enter) do {
      send hitters to harvester;
      transit observe;
    }
  }
}
|}

let test_inheritance_override () =
  let p = Typecheck.check ~extra:hh_extra_sigs (Parser.program hhh_source) in
  let hhh =
    List.find (fun (m : Ast.machine) -> m.mname = "HHH") p.machines
  in
  Alcotest.(check bool) "inheritance flattened" true (hhh.extends = None);
  Alcotest.(check int) "two states" 2 (List.length hhh.states);
  Alcotest.(check string) "initial state kept" "observe"
    (List.hd hhh.states).sname;
  (* overridden state has the child's util *)
  let det =
    List.find (fun (s : Ast.state_decl) -> s.sname = "HHdetected") hhh.states
  in
  (match det.sutil with
  | Some { ubody = [ { Ast.sk = Ast.Return (Some (Ast.Int 200)); _ } ]; _ } ->
      ()
  | _ -> Alcotest.fail "child util must override");
  (* variables inherited *)
  Alcotest.(check int) "vars inherited" 3 (List.length hhh.mvars)

let test_inheritance_no_shadowing () =
  expect_type_error ~extra:hh_extra_sigs
    (hh_source ^ "machine H2 extends HH { long threshold; state s { } }")
    "shadows"

let test_inheritance_cycle () =
  expect_type_error
    {|machine A extends B { long x; state s { } }
      machine B extends A { long y; state t { } }|}
    "cycle"

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let hh_machine () =
  let p = check_hh () in
  List.hd p.machines

let test_analysis_utility_kappa () =
  (* paper §III-B b: κ[[res.vCPU >= 1 and res.RAM >= 100]]
       = { r1 - 1, r2 - 100 }  and u = min(vCPU, PCIe) *)
  let m = hh_machine () in
  let obs = List.hd m.states in
  let u = Option.get obs.sutil in
  match Analysis.utility u with
  | Error e -> Alcotest.fail e
  | Ok [ branch ] ->
      Alcotest.(check int) "two constraints" 2
        (List.length branch.constraints);
      let vcpu = Analysis.resource_index Analysis.VCpu in
      let ram = Analysis.resource_index Analysis.Ram in
      let pcie = Analysis.resource_index Analysis.Pcie in
      let c1 = List.nth branch.constraints 0 in
      Alcotest.(check bool) "r_vcpu - 1 >= 0" true
        (Lin.equal c1 Lin.(sub (var vcpu) (const 1.)));
      let c2 = List.nth branch.constraints 1 in
      Alcotest.(check bool) "r_ram - 100 >= 0" true
        (Lin.equal c2 Lin.(sub (var ram) (const 100.)));
      (* min(vCPU, PCIe): two linear pieces *)
      Alcotest.(check int) "min of two" 2 (List.length branch.utility);
      let vals = [ Lin.var vcpu; Lin.var pcie ] in
      List.iter
        (fun piece ->
          Alcotest.(check bool) "piece is vCPU or PCIe" true
            (List.exists (Lin.equal piece) vals))
        branch.utility
  | Ok bs -> Alcotest.failf "expected 1 branch, got %d" (List.length bs)

let test_analysis_utility_or_split () =
  let src =
    {|machine M { long x; state s {
        util (r) {
          if (r.vCPU >= 1 or r.RAM >= 50) then { return r.vCPU; }
        } } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let m = List.hd p.machines in
  let u = Option.get (List.hd m.states).sutil in
  match Analysis.utility u with
  | Ok branches -> Alcotest.(check int) "or splits into 2" 2 (List.length branches)
  | Error e -> Alcotest.fail e

let test_analysis_utility_max_split () =
  let src =
    {|machine M { long x; state s {
        util (r) { return max(r.vCPU, 2 * r.RAM); } } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let u = Option.get (List.hd (List.hd p.machines).states).sutil in
  match Analysis.utility u with
  | Ok branches ->
      Alcotest.(check int) "max splits into 2" 2 (List.length branches)
  | Error e -> Alcotest.fail e

let test_analysis_utility_nonlinear_rejected () =
  let src =
    {|machine M { long x; state s {
        util (r) { return r.vCPU * r.RAM; } } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let u = Option.get (List.hd (List.hd p.machines).states).sutil in
  match Analysis.utility u with
  | Ok _ -> Alcotest.fail "nonlinear utility must be rejected"
  | Error m ->
      Alcotest.(check bool) "mentions non-linear" true
        (String.length m > 0)

let test_analysis_eval_utility () =
  let m = hh_machine () in
  let u = Option.get (List.hd m.states).sutil in
  match Analysis.utility u with
  | Error e -> Alcotest.fail e
  | Ok [ branch ] ->
      (* res = vCPU 2, RAM 200, TCAM 0, PCIe 0.5: min(2, 0.5) = 0.5 *)
      let res = [| 2.; 200.; 0.; 0.5 |] in
      Alcotest.(check bool) "feasible" true
        (Analysis.branch_feasible branch res);
      Alcotest.(check (float 1e-9)) "value" 0.5
        (Analysis.eval_utility branch res);
      let res_bad = [| 0.5; 200.; 0.; 0.5 |] in
      Alcotest.(check bool) "infeasible below vCPU 1" false
        (Analysis.branch_feasible branch res_bad)
  | Ok _ -> Alcotest.fail "expected one branch"

let test_analysis_polls () =
  let m = hh_machine () in
  match Analysis.polls m with
  | Error e -> Alcotest.fail e
  | Ok [ p ] ->
      Alcotest.(check string) "name" "pollStats" p.poll_name;
      Alcotest.(check bool) "subject all ports" true
        (p.subjects = [ Filter.All_ports ]);
      (match p.ival with
      | Analysis.Inv_linear inv ->
          (* ival = 10/PCIe  =>  1/ival = PCIe/10 *)
          let pcie = Analysis.resource_index Analysis.Pcie in
          Alcotest.(check bool) "inverse linear PCIe/10" true
            (Lin.equal inv (Lin.var ~coeff:0.1 pcie));
          (* with 5 units of PCIe the seed polls every 2 time units *)
          let res = Array.make 4 0. in
          res.(pcie) <- 5.;
          Alcotest.(check (float 1e-9)) "rate" 0.5
            (Analysis.poll_rate p.ival res)
      | Analysis.Const_ival _ -> Alcotest.fail "expected resource-dependent ival")
  | Ok ps -> Alcotest.failf "expected 1 poll, got %d" (List.length ps)

let test_analysis_const_ival () =
  let src =
    {|machine M { poll p = Poll { .ival = 0.01, .what = port 80 };
      long x; state s { } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  match Analysis.polls (List.hd p.machines) with
  | Ok [ poll ] -> (
      match poll.ival with
      | Analysis.Const_ival iv ->
          Alcotest.(check (float 1e-12)) "10ms" 0.01 iv;
          Alcotest.(check bool) "port-80 subject" true
            (poll.subjects = [ Filter.Port_counter 80 ])
      | Analysis.Inv_linear _ -> Alcotest.fail "expected constant ival")
  | Ok _ | Error _ -> Alcotest.fail "poll analysis failed"

(* Placement π against a topology *)
let topo () = Farm_net.Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2

let test_analysis_place_all () =
  let m = hh_machine () in
  let topo = topo () in
  match Analysis.placement ~topo m with
  | Error e -> Alcotest.fail e
  | Ok seeds ->
      (* place all: one pinned seed per switch (5 switches) *)
      Alcotest.(check int) "one seed per switch" 5 (List.length seeds);
      List.iter
        (fun (s : Analysis.seed_site) ->
          Alcotest.(check int) "pinned" 1 (List.length s.candidates))
        seeds

let test_analysis_place_any () =
  let src = "machine M { place any; long x; state s { } }" in
  let p = Typecheck.check (Parser.program src) in
  let topo = topo () in
  match Analysis.placement ~topo (List.hd p.machines) with
  | Ok [ s ] -> Alcotest.(check int) "all candidates" 5 (List.length s.candidates)
  | Ok _ | Error _ -> Alcotest.fail "expected a single seed"

let test_analysis_place_range () =
  (* receiver range == 0 over traffic to host1_0 (10.2.1.0/24): the seed
     must sit on the receiving leaf (leaf1). *)
  let src =
    {|machine M {
        place any receiver dstIP "10.2.1.0/24" range == 0;
        long x; state s { } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let topo = topo () in
  match Analysis.placement ~topo (List.hd p.machines) with
  | Ok [ s ] ->
      let names =
        List.map
          (fun id -> (Farm_net.Topology.node topo id).name)
          s.candidates
      in
      Alcotest.(check (list string)) "receiving leaf" [ "leaf1" ] names
  | Ok seeds ->
      Alcotest.failf "expected a single seed, got %d" (List.length seeds)
  | Error e -> Alcotest.fail e

let test_analysis_place_midpoint () =
  (* midpoint range == 0 over cross-leaf traffic: candidates are spines *)
  let src =
    {|machine M {
        place all midpoint srcIP "10.1.0.0/16" and dstIP "10.2.0.0/16" range == 0;
        long x; state s { } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let topo = topo () in
  match Analysis.placement ~topo (List.hd p.machines) with
  | Ok seeds ->
      Alcotest.(check bool) "some seeds" true (seeds <> []);
      List.iter
        (fun (s : Analysis.seed_site) ->
          List.iter
            (fun id ->
              let name = (Farm_net.Topology.node topo id).name in
              Alcotest.(check bool)
                (Printf.sprintf "%s is a spine" name)
                true
                (String.length name >= 5 && String.sub name 0 5 = "spine"))
            s.candidates)
        seeds
  | Error e -> Alcotest.fail e

let test_analysis_place_nodes_by_name () =
  let src =
    {|machine M { place any "leaf0", "leaf2"; long x; state s { } }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let topo = topo () in
  match Analysis.placement ~topo (List.hd p.machines) with
  | Ok [ s ] -> Alcotest.(check int) "two candidates" 2 (List.length s.candidates)
  | Ok _ | Error _ -> Alcotest.fail "expected one seed over two switches"

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

type sent = { to_harvester : Value.t list ref }

let make_host ?(resources = [| 2.; 200.; 10.; 5. |]) () =
  let sent = { to_harvester = ref [] } in
  let tcam_rules = ref [] in
  let host =
    { Interp.null_host with
      h_resources = (fun () -> resources);
      h_send =
        (fun target v ->
          match target with
          | Interp.To_harvester -> sent.to_harvester := v :: !(sent.to_harvester)
          | Interp.To_machine _ -> ());
      h_builtin =
        (fun name ->
          match name with
          | "getHH" ->
              Some
                (fun args ->
                  match args with
                  | [ Value.Stats stats; Value.Num threshold ] ->
                      let hitters = ref [] in
                      Array.iteri
                        (fun i v ->
                          if v > threshold then
                            hitters := Value.Num (float_of_int i) :: !hitters)
                        stats;
                      Value.List (List.rev !hitters)
                  | _ -> Alcotest.fail "getHH misuse")
          | "setHitterRules" ->
              Some
                (fun args ->
                  tcam_rules := args :: !tcam_rules;
                  Value.Unit)
          | _ -> None) }
  in
  (host, sent, tcam_rules)

let make_hh ?externals () =
  let p = check_hh () in
  let host, sent, rules = make_host () in
  let t = Interp.create ?externals ~program:p ~machine:"HH" host in
  Interp.start t;
  (t, sent, rules)

let test_interp_initial_state () =
  let t, _, _ = make_hh () in
  Alcotest.(check string) "starts in observe" "observe"
    (Interp.current_state t);
  (* external default from initializer *)
  match Interp.var t "threshold" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "threshold" 1000. n
  | _ -> Alcotest.fail "threshold must be bound"

let test_interp_externals_override () =
  let p = check_hh () in
  let host, _, _ = make_host () in
  let t =
    Interp.create
      ~externals:[ ("threshold", Value.Num 5.) ]
      ~program:p ~machine:"HH" host
  in
  Interp.start t;
  match Interp.var t "threshold" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "overridden" 5. n
  | _ -> Alcotest.fail "threshold must be bound"

let test_interp_poll_no_hh () =
  let t, sent, _ = make_hh () in
  Interp.fire_trigger t "pollStats" (Value.Stats [| 10.; 20.; 30. |]);
  Alcotest.(check string) "stays in observe" "observe"
    (Interp.current_state t);
  Alcotest.(check int) "nothing sent" 0 (List.length !(sent.to_harvester))

let test_interp_poll_detects_hh () =
  let t, sent, rules = make_hh () in
  (* port 1 exceeds the threshold of 1000 *)
  Interp.fire_trigger t "pollStats" (Value.Stats [| 10.; 5000.; 30. |]);
  (* HHdetected's enter handler sends to harvester, installs rules and
     transits straight back to observe *)
  Alcotest.(check string) "back in observe" "observe"
    (Interp.current_state t);
  Alcotest.(check int) "one message to harvester" 1
    (List.length !(sent.to_harvester));
  (match !(sent.to_harvester) with
  | [ Value.List [ Value.Num p ] ] ->
      Alcotest.(check (float 0.)) "port 1 reported" 1. p
  | _ -> Alcotest.fail "expected hitters list");
  Alcotest.(check int) "local reaction fired" 1 (List.length !rules)

let test_interp_recv_updates_threshold () =
  let t, sent, _ = make_hh () in
  let consumed =
    Interp.deliver t ~from:Interp.From_harvester (Value.Num 9999.)
  in
  Alcotest.(check bool) "recv consumed" true consumed;
  (match Interp.var t "threshold" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "updated" 9999. n
  | _ -> Alcotest.fail "threshold must be bound");
  (* below the new threshold: no detection *)
  Interp.fire_trigger t "pollStats" (Value.Stats [| 5000. |]);
  Alcotest.(check int) "no detection below threshold" 0
    (List.length !(sent.to_harvester));
  (* recv of an action value matches the second machine event *)
  let consumed =
    Interp.deliver t ~from:Interp.From_harvester
      (Value.Action Farm_net.Tcam.Drop)
  in
  Alcotest.(check bool) "action recv consumed" true consumed;
  match Interp.var t "hitterAction" with
  | Some (Value.Action Farm_net.Tcam.Drop) -> ()
  | _ -> Alcotest.fail "hitterAction must be updated"

let test_interp_unmatched_recv () =
  let t, _, _ = make_hh () in
  (* no recv pattern for a string from a machine *)
  let consumed =
    Interp.deliver t ~from:(Interp.From_machine "Other") (Value.Str "hi")
  in
  Alcotest.(check bool) "not consumed" false consumed

let test_interp_snapshot_restore () =
  let t, _, _ = make_hh () in
  ignore (Interp.deliver t ~from:Interp.From_harvester (Value.Num 777.));
  let vars, state = Interp.snapshot t in
  (* fresh instance on another "switch" *)
  let p = check_hh () in
  let host, _, _ = make_host () in
  let t2 = Interp.create ~program:p ~machine:"HH" host in
  Interp.restore t2 ~vars ~state;
  Alcotest.(check string) "state restored" state (Interp.current_state t2);
  match Interp.var t2 "threshold" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "migrated threshold" 777. n
  | _ -> Alcotest.fail "threshold must survive migration"

let test_interp_almanac_function () =
  let src =
    {|
long tri(long n) {
  long acc = 0;
  long i = 0;
  while (i <= n) { acc = acc + i; i = i + 1; }
  return acc;
}
machine M { long x; state s { when (enter) do { x = tri(4); } } }
|}
  in
  let p = Typecheck.check (Parser.program src) in
  let t = Interp.create ~program:p ~machine:"M" Interp.null_host in
  Interp.start t;
  (match Interp.var t "x" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "tri(4)=10" 10. n
  | _ -> Alcotest.fail "x must be set");
  match Interp.call_function t "tri" [ Value.Num 5. ] with
  | Value.Num n -> Alcotest.(check (float 0.)) "tri(5)=15" 15. n
  | _ -> Alcotest.fail "tri must return a number"

let test_interp_state_locals_reset () =
  let src =
    {|machine M {
        long total = 0;
        state a {
          long cnt = 0;
          when (recv long x from harvester) do {
            cnt = cnt + x;
            total = total + cnt;
            if (cnt >= 2) then { transit b; }
          }
        }
        state b {
          when (recv long x from harvester) do { transit a; }
        }
      }|}
  in
  let p = Typecheck.check (Parser.program src) in
  let t = Interp.create ~program:p ~machine:"M" Interp.null_host in
  Interp.start t;
  ignore (Interp.deliver t ~from:Interp.From_harvester (Value.Num 1.));
  ignore (Interp.deliver t ~from:Interp.From_harvester (Value.Num 1.));
  Alcotest.(check string) "moved to b" "b" (Interp.current_state t);
  ignore (Interp.deliver t ~from:Interp.From_harvester (Value.Num 1.));
  Alcotest.(check string) "back to a" "a" (Interp.current_state t);
  (* cnt was reset on re-entry *)
  match Interp.var t "cnt" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "locals reset" 0. n
  | _ -> Alcotest.fail "cnt must exist in state a"

let test_interp_trigger_reassign_notifies () =
  let notified = ref [] in
  let src =
    {|machine M {
        poll p = Poll { .ival = 1, .what = port ANY };
        long x;
        state s {
          when (p as stats) do {
            p = Poll { .ival = 10, .what = port ANY };
          }
        }
      }|}
  in
  let prog = Typecheck.check (Parser.program src) in
  let host =
    { Interp.null_host with
      h_set_trigger = (fun name _ v -> notified := (name, v) :: !notified) }
  in
  let t = Interp.create ~program:prog ~machine:"M" host in
  Interp.start t;
  Interp.fire_trigger t "p" (Value.Stats [| 1. |]);
  match !notified with
  | [ ("p", Value.Struct ("Poll", _)) ] -> ()
  | _ -> Alcotest.fail "host must be notified of the polling-rate change"

(* runtime error behaviour *)
let test_interp_runtime_errors () =
  let src =
    {|
machine M {
  long x;
  list l = [];
  state s {
    when (recv long cmd from harvester) do {
      if (cmd == 1) then { x = 1 / 0; }
      if (cmd == 2) then { x = nth(l, 5); }
      if (cmd == 3) then { while (true) { x = x + 1; } }
    }
  }
}
|}
  in
  let p = Typecheck.check (Parser.program src) in
  let t = Interp.create ~program:p ~machine:"M" Interp.null_host in
  Interp.start t;
  let expect cmd frag =
    match Interp.deliver t ~from:Interp.From_harvester (Value.Num cmd) with
    | _ -> Alcotest.failf "expected runtime error for cmd %g" cmd
    | exception Interp.Runtime_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "%g mentions %s (got %s)" cmd frag m)
          true
          (let lm = String.lowercase_ascii m in
           let n = String.length frag in
           let found = ref false in
           for i = 0 to String.length lm - n do
             if String.sub lm i n = frag then found := true
           done;
           !found)
  in
  expect 1. "division by zero";
  expect 2. "out of bounds";
  expect 3. "budget"

let test_interp_machine_to_machine_send () =
  (* a seed sending to another machine type routes through h_send *)
  let src =
    {|
machine A {
  long x;
  state s {
    when (recv long go from harvester) do { send 7 to B; }
  }
}
machine B {
  long got = 0;
  state s {
    when (recv long v from A) do { got = v; }
  }
}
|}
  in
  let p = Typecheck.check (Parser.program src) in
  let b = ref None in
  let host_a =
    { Interp.null_host with
      h_send =
        (fun target v ->
          match (target, !b) with
          | Interp.To_machine ("B", _), Some bi ->
              ignore (Interp.deliver bi ~from:(Interp.From_machine "A") v)
          | _ -> ()) }
  in
  let a = Interp.create ~program:p ~machine:"A" host_a in
  let bi = Interp.create ~program:p ~machine:"B" Interp.null_host in
  b := Some bi;
  Interp.start a;
  Interp.start bi;
  ignore (Interp.deliver a ~from:Interp.From_harvester (Value.Num 1.));
  match Interp.var bi "got" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "B received" 7. n
  | _ -> Alcotest.fail "got unbound"

(* property: analysis utility evaluation agrees with direct interpretation
   of the util body on random feasible points *)
let prop_utility_agrees_with_eval =
  QCheck2.Test.make ~name:"utility polynomials match direct evaluation"
    ~count:100
    QCheck2.Gen.(pair (float_range 1. 8.) (float_range 100. 400.))
    (fun (cpu, ram) ->
      let m = hh_machine () in
      let u = Option.get (List.hd m.states).sutil in
      match Analysis.utility u with
      | Error _ -> false
      | Ok [ branch ] ->
          let pcie = 3. in
          let res = [| cpu; ram; 4.; pcie |] in
          if not (Analysis.branch_feasible branch res) then
            QCheck2.assume_fail ()
          else
            (* List. 2's utility is min(res.vCPU, res.PCIe) *)
            let expected = Float.min cpu pcie in
            Float.abs (Analysis.eval_utility branch res -. expected) < 1e-9
      | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* XML interchange (§V-A d)                                            *)
(* ------------------------------------------------------------------ *)

let test_xml_escaping_roundtrip () =
  let doc =
    Xml.element "root"
      ~attrs:[ ("msg", {|a<b & "c" 'd'|}) ]
      [ Xml.element "child" [ Xml.text "x < y && z" ] ]
  in
  (* compact form: pretty-printing pads text nodes, so exact text
     round-trips use indent:false *)
  let s = Xml.to_string ~indent:false doc in
  let back = Xml.parse s in
  Alcotest.(check string) "attr survives" {|a<b & "c" 'd'|}
    (Xml.attr_exn back "msg");
  match Xml.first back "child" with
  | Some c -> Alcotest.(check string) "text survives" "x < y && z"
      (Xml.text_content c)
  | None -> Alcotest.fail "child lost"

let test_xml_parser_features () =
  let doc =
    Xml.parse
      {|<?xml version="1.0"?>
<!-- a comment -->
<a x="1"><b/><!-- inner --><c>t</c></a>|}
  in
  Alcotest.(check string) "name" "a" (Xml.name doc);
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attr doc "x");
  Alcotest.(check int) "two children" 2
    (List.length
       (List.filter
          (function Xml.Element _ -> true | Xml.Text _ -> false)
          (Xml.children doc)))

let test_xml_parse_errors () =
  List.iter
    (fun bad ->
      match Xml.parse bad with
      | _ -> Alcotest.failf "expected parse error for %S" bad
      | exception Xml.Parse_error _ -> ())
    [ "<a>"; "<a></b>"; "<a x=1/>"; "no xml here"; "<a><b></a></b>" ]

let test_machine_xml_roundtrip_hh () =
  let p = parse_hh () in
  let xml = Machine_xml.compile p in
  let back = Machine_xml.load xml in
  Alcotest.(check bool) "structural round-trip" true
    (Ast.strip_pos p = Ast.strip_pos back)

let test_machine_xml_roundtrip_catalog () =
  (* every Table I task survives compile -> XML -> load *)
  List.iter
    (fun (e : Farm_tasks.Task_common.entry) ->
      let p = Parser.program e.source in
      let back = Machine_xml.load (Machine_xml.compile p) in
      Alcotest.(check bool)
        (Printf.sprintf "%s survives XML" e.name)
        true
        (Ast.strip_pos p = Ast.strip_pos back))
    Farm_tasks.Catalog.all

let test_machine_xml_decode_errors () =
  (match Machine_xml.load "<almanac><machine/></almanac>" with
  | _ -> Alcotest.fail "expected decode error (machine without name)"
  | exception Invalid_argument _ | (exception Machine_xml.Decode_error _) ->
      ());
  match Machine_xml.load "<notalmanac/>" with
  | _ -> Alcotest.fail "expected decode error"
  | exception Machine_xml.Decode_error _ -> ()

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Differential: Interp vs Compiled over the full task catalog         *)
(*                                                                     *)
(* Every machine of every catalog task runs under both engines with    *)
(* identical scripted trigger firings, message deliveries, reallocs    *)
(* and one mid-sequence snapshot/restore migration.  After every step  *)
(* the engines must agree on the current state, every variable value,  *)
(* the transition count, and the full effect log (sends, transits,     *)
(* trigger reassignments, host logs).                                  *)
(* ------------------------------------------------------------------ *)

module Flow = Farm_net.Flow

let diff_ip s = Farm_net.Ipaddr.of_string s

let diff_packet round =
  let tuple =
    { Flow.src = diff_ip (Printf.sprintf "10.0.%d.%d" (round mod 4) ((round mod 7) + 1));
      dst = diff_ip "10.1.0.1";
      sport = 1000 + (round * 13);
      dport = (match round mod 3 with 0 -> 22 | 1 -> 53 | _ -> 80);
      proto = (if round mod 5 = 4 then Flow.Udp else Flow.Tcp) }
  in
  let flags =
    match round mod 3 with
    | 0 -> Flow.syn_only
    | 1 -> Flow.syn_ack
    | _ -> Flow.no_flags
  in
  Flow.packet ~flags ~payload:"q0.attack.example.com" tuple (200 + (100 * round))

(* Values that cross typical catalog thresholds as rounds advance (round
   0 stays at zero so the "nothing happening" paths run too). *)
let diff_trigger_value (tt : Ast.trigger_type) ~round =
  match tt with
  | Ast.Poll ->
      Value.Stats
        (Array.init 16 (fun i ->
             if round = 0 then 0.
             else float_of_int ((round * round * 300) + (i * 157))))
  | Ast.Probe -> Value.Packet (diff_packet round)
  | Ast.Time -> Value.Num (float_of_int round *. 0.5)

let diff_recv_value (ty : Ast.typ) ~round =
  match ty with
  | Ast.Tint | Ast.Tlong | Ast.Tfloat ->
      Value.Num (float_of_int (500 + (round * 250)))
  | Ast.Tbool -> Value.Bool (round mod 2 = 0)
  | Ast.Tstring -> Value.Str (Printf.sprintf "msg%d" round)
  | Ast.Tlist -> Value.List [ Value.Num (float_of_int round); Value.Num 2. ]
  | Ast.Tpacket -> Value.Packet (diff_packet round)
  | Ast.Taction -> Value.Action Farm_net.Tcam.Drop
  | Ast.Tfilter -> Value.FilterV (Filter.atom Filter.Any)
  | Ast.Tstats ->
      Value.Stats (Array.init 8 (fun i -> float_of_int ((round * 100) + i)))
  | Ast.Trule ->
      Value.Struct
        ("Rule",
         [ ("pattern", Value.FilterV (Filter.atom Filter.Any));
           ("act", Value.Action Farm_net.Tcam.Count) ])
  | Ast.Tresources | Ast.Tunit -> Value.Unit

(* (trigger name, type) and recv (type, source) stimuli of a machine *)
let diff_stimuli (m : Ast.machine) =
  let trigs = List.map (fun (td : Ast.trig_decl) -> (td.tname, td.ttyp)) m.mtrigs in
  let events =
    List.concat_map (fun (st : Ast.state_decl) -> st.sevents) m.states
    @ m.mevents
  in
  let seen = Hashtbl.create 8 in
  let recvs =
    List.filter_map
      (fun (ev : Ast.event) ->
        match ev.trigger with
        | Ast.On_recv (ty, _, dest) ->
            let from =
              match dest with
              | Ast.Harvester -> Host.From_harvester
              | Ast.Machine (name, _) -> Host.From_machine name
            in
            let key = (Ast.typ_to_string ty, from) in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.replace seen key ();
              Some (ty, from)
            end
        | _ -> None)
      events
  in
  (trigs, recvs)

type diff_driver = {
  dd_engine : Engine.engine;
  dd_host : Host.host;
  dd_program : Ast.program;
  dd_machine : string;
  dd_externals : (string * Value.t) list;
  mutable dd_inst : Engine.instance;
  dd_log : string list ref;
  dd_transitions : int ref;
}

let diff_target_str = function
  | Host.To_harvester -> "harvester"
  | Host.To_machine (m, None) -> m
  | Host.To_machine (m, Some d) -> Printf.sprintf "%s@%d" m d

let diff_driver ~engine ~program ~machine ~externals
    ~(builtins : (string * (Value.t list -> Value.t)) list) =
  let log = ref [] in
  let transitions = ref 0 in
  let now_count = ref 0 in
  let host =
    { Host.h_now =
        (fun () ->
          incr now_count;
          float_of_int !now_count *. 0.125);
      h_resources = (fun () -> [| 2.; 200.; 10.; 5. |]);
      h_send =
        (fun target v ->
          log :=
            Printf.sprintf "send:%s:%s" (diff_target_str target)
              (Value.to_string v)
            :: !log);
      h_set_trigger =
        (fun name _tt v ->
          log := Printf.sprintf "settrig:%s:%s" name (Value.to_string v) :: !log);
      h_builtin = (fun name -> List.assoc_opt name builtins);
      h_on_transit =
        (fun a b ->
          incr transitions;
          log := Printf.sprintf "transit:%s->%s" a b :: !log);
      h_log = (fun m -> log := ("log:" ^ m) :: !log);
      h_trace = None }
  in
  { dd_engine = engine; dd_host = host; dd_program = program;
    dd_machine = machine; dd_externals = externals;
    dd_inst =
      Engine.create ~engine ~externals ~program ~machine host;
    dd_log = log; dd_transitions = transitions }

type diff_step =
  | D_start
  | D_fire of string * Value.t
  | D_deliver of Host.source * Value.t
  | D_realloc
  | D_migrate

let diff_step_str = function
  | D_start -> "start"
  | D_fire (name, _) -> "fire " ^ name
  | D_deliver (Host.From_harvester, _) -> "deliver from harvester"
  | D_deliver (Host.From_machine m, _) -> "deliver from " ^ m
  | D_realloc -> "realloc"
  | D_migrate -> "migrate"

(* Apply one step; runtime/type errors become part of the observable
   outcome (both engines must fail identically). *)
let diff_apply d step =
  try
    match step with
    | D_start ->
        Engine.start d.dd_inst;
        Ok "()"
    | D_fire (name, v) ->
        Engine.fire_trigger d.dd_inst name v;
        Ok "()"
    | D_deliver (from, v) ->
        Ok (string_of_bool (Engine.deliver d.dd_inst ~from v))
    | D_realloc ->
        Engine.realloc d.dd_inst;
        Ok "()"
    | D_migrate ->
        let vars, state = Engine.snapshot d.dd_inst in
        let fresh =
          Engine.create ~engine:d.dd_engine ~externals:d.dd_externals
            ~program:d.dd_program ~machine:d.dd_machine d.dd_host
        in
        Engine.restore fresh ~vars ~state;
        d.dd_inst <- fresh;
        Ok "migrated"
  with
  | Host.Runtime_error m -> Error ("runtime error: " ^ m)
  | Value.Type_error m -> Error ("type error: " ^ m)

let diff_observe d =
  let vars, state = Engine.snapshot d.dd_inst in
  let vars =
    List.sort compare
      (List.map (fun (k, v) -> k ^ " = " ^ Value.to_string v) vars)
  in
  (state, vars, !(d.dd_transitions), List.rev !(d.dd_log))

let diff_check_step ~what di dc step =
  let ri = diff_apply di step in
  let rc = diff_apply dc step in
  let ctx = Printf.sprintf "%s: %s" what (diff_step_str step) in
  Alcotest.(check (result string string)) (ctx ^ ": outcome") ri rc;
  let si, vi, ti, li = diff_observe di in
  let sc, vc, tc, lc = diff_observe dc in
  Alcotest.(check string) (ctx ^ ": state") si sc;
  Alcotest.(check (list string)) (ctx ^ ": variables") vi vc;
  Alcotest.(check int) (ctx ^ ": transitions") ti tc;
  Alcotest.(check (list string)) (ctx ^ ": effects") li lc;
  ri

let diff_run_machine ~what ~program ~machine ~externals ~builtins =
  let m =
    List.find (fun (m : Ast.machine) -> m.mname = machine) program.Ast.machines
  in
  let trigs, recvs = diff_stimuli m in
  let di = diff_driver ~engine:`Interp ~program ~machine ~externals ~builtins in
  let dc = diff_driver ~engine:`Compiled ~program ~machine ~externals ~builtins in
  Alcotest.(check string)
    (what ^ ": initial state")
    (Engine.current_state di.dd_inst)
    (Engine.current_state dc.dd_inst);
  let steps =
    D_start
    :: List.concat
         (List.init 5 (fun round ->
              List.map
                (fun (name, tt) ->
                  D_fire (name, diff_trigger_value tt ~round))
                trigs
              @ List.map
                  (fun (ty, from) ->
                    D_deliver (from, diff_recv_value ty ~round))
                  recvs
              @ (if round = 2 then [ D_realloc ] else [])
              @ if round = 3 then [ D_migrate ] else []))
  in
  (* stop at the first (identical) error: past it the reference
     interpreter's own state is unspecified *)
  let ok_steps = ref 0 in
  ignore
    (List.fold_left
       (fun halted step ->
         if halted then true
         else
           match diff_check_step ~what di dc step with
           | Ok _ ->
               incr ok_steps;
               false
           | Error _ -> true)
       false steps);
  !ok_steps

let test_differential_catalog () =
  let total_ok = ref 0 in
  List.iter
    (fun (entry : Farm_tasks.Task_common.entry) ->
      let program =
        Typecheck.check ~extra:entry.extra_sigs (Parser.program entry.source)
      in
      List.iter
        (fun (m : Ast.machine) ->
          let externals =
            Option.value ~default:[]
              (List.assoc_opt m.mname entry.externals)
          in
          total_ok :=
            !total_ok
            + diff_run_machine
                ~what:(Printf.sprintf "%s/%s" entry.name m.mname)
                ~program ~machine:m.mname ~externals ~builtins:entry.builtins)
        program.machines)
    Farm_tasks.Catalog.all;
  (* the sequences must actually run, not halt on an early error *)
  if !total_ok < 100 then
    Alcotest.failf "differential catalog only completed %d ok steps" !total_ok

(* The HH machine exercises host builtins (getHH / setHitterRules) that
   the catalog doesn't; run it differentially too. *)
let test_differential_hh () =
  let program = check_hh () in
  let builtins =
    [ ("getHH",
       fun args ->
         match args with
         | [ Value.Stats stats; Value.Num threshold ] ->
             let hitters = ref [] in
             Array.iteri
               (fun i v ->
                 if v > threshold then
                   hitters := Value.Num (float_of_int i) :: !hitters)
               stats;
             Value.List (List.rev !hitters)
         | _ -> Alcotest.fail "getHH misuse");
      ("setHitterRules", fun _ -> Value.Unit) ]
  in
  let ok =
    diff_run_machine ~what:"listing2/HH" ~program ~machine:"HH"
      ~externals:[ ("threshold", Value.Num 700.) ]
      ~builtins
  in
  if ok < 5 then Alcotest.failf "HH differential only completed %d ok steps" ok

(* Randomized interleavings over the same catalog: rather than the fixed
   round-robin schedule above, fire/deliver/realloc/migrate in a random
   order drawn from a printable seed, so engine-divergence bugs that only
   show up under a particular ordering (e.g. migrate directly after an
   unconsumed message) are hunted too. *)

let diff_cases =
  lazy
    (List.concat_map
       (fun (entry : Farm_tasks.Task_common.entry) ->
         let program =
           Typecheck.check ~extra:entry.extra_sigs (Parser.program entry.source)
         in
         List.map
           (fun (m : Ast.machine) ->
             let externals =
               Option.value ~default:[]
                 (List.assoc_opt m.mname entry.externals)
             in
             ( Printf.sprintf "%s/%s" entry.name m.mname,
               program, m, externals, entry.builtins ))
           program.machines)
       Farm_tasks.Catalog.all)

let diff_prop_step what di dc step =
  let ri = diff_apply di step in
  let rc = diff_apply dc step in
  let ctx = Printf.sprintf "%s: %s" what (diff_step_str step) in
  if ri <> rc then
    QCheck2.Test.fail_reportf "%s: outcomes differ (interp %s, compiled %s)"
      ctx
      (match ri with Ok s -> "ok " ^ s | Error e -> e)
      (match rc with Ok s -> "ok " ^ s | Error e -> e);
  let si, vi, ti, li = diff_observe di in
  let sc, vc, tc, lc = diff_observe dc in
  if si <> sc then
    QCheck2.Test.fail_reportf "%s: states differ (%s vs %s)" ctx si sc;
  if vi <> vc then
    QCheck2.Test.fail_reportf "%s: variables differ\n  interp: %s\n  compiled: %s"
      ctx (String.concat "; " vi) (String.concat "; " vc);
  if ti <> tc then
    QCheck2.Test.fail_reportf "%s: transition counts differ (%d vs %d)" ctx ti
      tc;
  if li <> lc then
    QCheck2.Test.fail_reportf "%s: effect logs differ\n  interp: %s\n  compiled: %s"
      ctx (String.concat " | " li) (String.concat " | " lc);
  ri

let prop_differential_random =
  QCheck2.Test.make ~name:"interp vs compiled agree on random interleavings"
    ~count:120
    ~print:(fun (idx, seed, len) ->
      Printf.sprintf "case=%d seed=%d len=%d" idx seed len)
    QCheck2.Gen.(
      triple (int_bound 1_000) (int_bound 1_000_000) (int_range 8 30))
    (fun (idx, seed, len) ->
      let cases = Lazy.force diff_cases in
      let what, program, (m : Ast.machine), externals, builtins =
        List.nth cases (idx mod List.length cases)
      in
      let trigs, recvs = diff_stimuli m in
      let trig_arr = Array.of_list trigs and recv_arr = Array.of_list recvs in
      let rng = Farm_sim.Rng.create (0xd1ff + seed) in
      let kinds =
        Array.of_list
          (List.concat
             [ (if Array.length trig_arr > 0 then [ `Fire; `Fire; `Fire ]
                else []);
               (if Array.length recv_arr > 0 then [ `Deliver; `Deliver ]
                else []);
               [ `Realloc; `Migrate ] ])
      in
      let random_step () =
        let round = Farm_sim.Rng.int rng 7 in
        match kinds.(Farm_sim.Rng.int rng (Array.length kinds)) with
        | `Fire ->
            let name, tt =
              trig_arr.(Farm_sim.Rng.int rng (Array.length trig_arr))
            in
            D_fire (name, diff_trigger_value tt ~round)
        | `Deliver ->
            let ty, from =
              recv_arr.(Farm_sim.Rng.int rng (Array.length recv_arr))
            in
            D_deliver (from, diff_recv_value ty ~round)
        | `Realloc -> D_realloc
        | `Migrate -> D_migrate
      in
      let steps = ref [] in
      for _ = 1 to len do
        steps := random_step () :: !steps
      done;
      let steps = D_start :: List.rev !steps in
      let di =
        diff_driver ~engine:`Interp ~program ~machine:m.mname ~externals
          ~builtins
      in
      let dc =
        diff_driver ~engine:`Compiled ~program ~machine:m.mname ~externals
          ~builtins
      in
      if Engine.current_state di.dd_inst <> Engine.current_state dc.dd_inst
      then QCheck2.Test.fail_reportf "%s: initial state differs" what;
      (* stop at the first (identical) error, as in the scripted run *)
      let rec go = function
        | [] -> true
        | step :: rest -> (
            match diff_prop_step what di dc step with
            | Ok _ -> go rest
            | Error _ -> true)
      in
      go steps)

let () =
  Alcotest.run "farm_almanac"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments and strings" `Quick
            test_lexer_comments_strings;
          Alcotest.test_case "scientific notation" `Quick
            test_lexer_scientific_notation;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions ] );
      ( "parser",
        [ Alcotest.test_case "heavy hitter example" `Quick test_parse_hh;
          Alcotest.test_case "arithmetic precedence" `Quick
            test_parse_expr_precedence;
          Alcotest.test_case "and/or precedence" `Quick
            test_parse_and_or_precedence;
          Alcotest.test_case "filter expressions" `Quick
            test_parse_filter_exprs;
          Alcotest.test_case "struct literal" `Quick test_parse_struct_lit;
          Alcotest.test_case "place variants" `Quick test_parse_place_variants;
          Alcotest.test_case "fundec" `Quick test_parse_fundec;
          Alcotest.test_case "else-if chain" `Quick test_parse_else_if_chain;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "small float round-trip" `Quick
            test_roundtrip_small_floats;
          Alcotest.test_case "HH round-trip" `Quick test_roundtrip_hh ]
        @ qsuite [ prop_expr_roundtrip ] );
      ( "typecheck",
        [ Alcotest.test_case "HH passes" `Quick test_typecheck_hh;
          Alcotest.test_case "unbound var" `Quick test_typecheck_unbound;
          Alcotest.test_case "bad transit" `Quick test_typecheck_bad_transit;
          Alcotest.test_case "type mismatch" `Quick
            test_typecheck_type_mismatch;
          Alcotest.test_case "util restrictions" `Quick
            test_typecheck_util_restrictions;
          Alcotest.test_case "unknown resource" `Quick
            test_typecheck_unknown_resource;
          Alcotest.test_case "duplicate state" `Quick
            test_typecheck_duplicate_state;
          Alcotest.test_case "unknown trigger" `Quick
            test_typecheck_trigger_event;
          Alcotest.test_case "string concat" `Quick test_string_concat;
          Alcotest.test_case "string arith rejected" `Quick
            test_typecheck_rejects_string_arith;
          Alcotest.test_case "inheritance override" `Quick
            test_inheritance_override;
          Alcotest.test_case "no shadowing" `Quick
            test_inheritance_no_shadowing;
          Alcotest.test_case "inheritance cycle" `Quick
            test_inheritance_cycle ] );
      ( "analysis",
        [ Alcotest.test_case "utility kappa (paper example)" `Quick
            test_analysis_utility_kappa;
          Alcotest.test_case "or split" `Quick test_analysis_utility_or_split;
          Alcotest.test_case "max split" `Quick
            test_analysis_utility_max_split;
          Alcotest.test_case "nonlinear rejected" `Quick
            test_analysis_utility_nonlinear_rejected;
          Alcotest.test_case "eval utility" `Quick test_analysis_eval_utility;
          Alcotest.test_case "polls" `Quick test_analysis_polls;
          Alcotest.test_case "const ival" `Quick test_analysis_const_ival;
          Alcotest.test_case "place all" `Quick test_analysis_place_all;
          Alcotest.test_case "place any" `Quick test_analysis_place_any;
          Alcotest.test_case "place range receiver" `Quick
            test_analysis_place_range;
          Alcotest.test_case "place midpoint" `Quick
            test_analysis_place_midpoint;
          Alcotest.test_case "place nodes by name" `Quick
            test_analysis_place_nodes_by_name ] );
      ( "interp",
        [ Alcotest.test_case "initial state" `Quick test_interp_initial_state;
          Alcotest.test_case "externals override" `Quick
            test_interp_externals_override;
          Alcotest.test_case "poll without HH" `Quick test_interp_poll_no_hh;
          Alcotest.test_case "poll detects HH" `Quick
            test_interp_poll_detects_hh;
          Alcotest.test_case "recv updates threshold" `Quick
            test_interp_recv_updates_threshold;
          Alcotest.test_case "unmatched recv" `Quick test_interp_unmatched_recv;
          Alcotest.test_case "snapshot/restore (migration)" `Quick
            test_interp_snapshot_restore;
          Alcotest.test_case "almanac function" `Quick
            test_interp_almanac_function;
          Alcotest.test_case "state locals reset" `Quick
            test_interp_state_locals_reset;
          Alcotest.test_case "trigger reassign notifies host" `Quick
            test_interp_trigger_reassign_notifies;
          Alcotest.test_case "runtime errors" `Quick
            test_interp_runtime_errors;
          Alcotest.test_case "machine-to-machine send" `Quick
            test_interp_machine_to_machine_send ]
        @ qsuite [ prop_utility_agrees_with_eval ] );
      ( "xml",
        [ Alcotest.test_case "escaping round-trip" `Quick
            test_xml_escaping_roundtrip;
          Alcotest.test_case "parser features" `Quick
            test_xml_parser_features;
          Alcotest.test_case "parse errors" `Quick test_xml_parse_errors;
          Alcotest.test_case "HH round-trip" `Quick
            test_machine_xml_roundtrip_hh;
          Alcotest.test_case "catalog round-trip" `Quick
            test_machine_xml_roundtrip_catalog;
          Alcotest.test_case "decode errors" `Quick
            test_machine_xml_decode_errors ] );
      ( "differential",
        [ Alcotest.test_case "catalog: interp vs compiled" `Quick
            test_differential_catalog;
          Alcotest.test_case "HH: interp vs compiled" `Quick
            test_differential_hh ]
        @ qsuite [ prop_differential_random ] ) ]

(* Tests for the comparator-system models: the collector, sFlow, Sonata,
   Planck, Helios and Newton all run the same heavy-hitter scenario; the
   pipeline structure of each must produce its characteristic detection
   latency, and Newton's cross-switch merge must catch what Sonata's
   switch-local queries cannot (§VII). *)

module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Flow = Farm_net.Flow
module Ipaddr = Farm_net.Ipaddr
open Farm_baselines

let threshold = 1e6
let onset = 2.

let make_world ?(background = true) () =
  let engine = Engine.create ~seed:8 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
  let fabric = Fabric.create topo in
  if background then begin
    let rng = Rng.split (Engine.rng engine) in
    Farm_net.Traffic.background engine fabric rng
      { Farm_net.Traffic.default_profile with concurrent_flows = 30;
        mean_rate = 10_000. }
  end;
  (engine, fabric)

let inject_hh engine fabric ~rate =
  Engine.schedule_at engine ~time:onset (fun engine ->
      let tuple =
        { Flow.src = Ipaddr.of_string "10.1.1.5";
          dst = Ipaddr.of_string "10.3.1.5"; sport = 7; dport = 7;
          proto = Flow.Udp }
      in
      ignore
        (Fabric.start_flow fabric ~time:(Engine.now engine) ~tuple ~rate ()))

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

let test_collector_rate_detection () =
  let engine, _ = make_world ~background:false () in
  let c =
    Collector.create engine ~latency:1e-3 ~process_cost:1e-6
      ~hh_threshold:1000.
  in
  (* two reports 1 s apart: delta 5000 B -> 5 kB/s >= 1 kB/s threshold *)
  Collector.push_counters c ~switch:1 ~port:2 ~bytes:0. ~read_time:0.;
  Engine.schedule engine ~delay:1. (fun _ ->
      Collector.push_counters c ~switch:1 ~port:2 ~bytes:5000. ~read_time:1.);
  Engine.run engine;
  (match Collector.detections c with
  | [ (t, 1, 2) ] ->
      Alcotest.(check bool) "detection after network latency" true (t > 1.)
  | d -> Alcotest.failf "expected one detection, got %d" (List.length d));
  (* duplicate reports do not re-detect *)
  Collector.push_counters c ~switch:1 ~port:2 ~bytes:99_000. ~read_time:2.;
  Engine.run engine;
  Alcotest.(check int) "deduplicated" 1 (List.length (Collector.detections c));
  Alcotest.(check int) "records counted" 3 (Collector.rx_records c)

(* ------------------------------------------------------------------ *)
(* Pipeline latencies                                                  *)
(* ------------------------------------------------------------------ *)

let detect_latency deploy detect shutdown =
  let engine, fabric = make_world () in
  let t = deploy engine fabric in
  inject_hh engine fabric ~rate:2e7;
  Engine.run ~until:(onset +. 10.) engine;
  let r =
    match detect t onset with
    | Some d -> Some (d -. onset)
    | None -> None
  in
  shutdown t;
  r

let test_sflow_latency_tracks_period () =
  let lat period =
    match
      detect_latency
        (fun e f ->
          Sflow.deploy
            ~config:{ Sflow.default_config with poll_period = period }
            e f ~hh_threshold:threshold)
        (fun t o ->
          Option.map (fun (d, _, _) -> d)
            (Collector.first_detection_after (Sflow.collector t) o))
        Sflow.shutdown
    with
    | Some d -> d
    | None -> Alcotest.fail "sFlow must detect"
  in
  let fast = lat 0.01 and slow = lat 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "detection within ~period (%.3f, %.3f)" fast slow)
    true
    (fast <= 0.03 && slow <= 0.25 && slow > fast)

let test_sonata_detects_at_batch_boundary () =
  match
    detect_latency
      (fun e f -> Sonata.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Sonata.first_detection_after t o))
      Sonata.shutdown
  with
  | Some d ->
      (* bounded below by the batch processing delay, above by window +
         processing *)
      Alcotest.(check bool)
        (Printf.sprintf "batchy latency (%.2fs)" d)
        true
        (d >= Sonata.default_config.batch_process_time && d <= 3.5)
  | None -> Alcotest.fail "Sonata must detect"

let test_planck_fast () =
  match
    detect_latency
      (fun e f -> Planck.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Planck.first_detection_after t o))
      Planck.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "millisecond scale (%.4fs)" d)
        true (d < 0.02)
  | None -> Alcotest.fail "Planck must detect"

let test_helios_within_loop () =
  match
    detect_latency
      (fun e f -> Helios.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _, _) -> d) (Helios.first_detection_after t o))
      Helios.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "within ~2 loop periods (%.3fs)" d)
        true
        (d <= 2.5 *. Helios.default_config.loop_period)
  | None -> Alcotest.fail "Helios must detect"

(* ------------------------------------------------------------------ *)
(* Property: sampling convergence                                      *)
(* ------------------------------------------------------------------ *)

(* sFlow-style packet sampling is rate-proportional: as the number of
   draws grows (sampling rate -> 1), the fraction of samples hitting the
   heavy hitter converges to its true share of the offered rate. *)
let prop_sampling_converges_to_hh_ratio =
  QCheck2.Test.make ~name:"packet sampling converges to true HH ratio"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 2 8))
    (fun (seed, n_bg) ->
      let sw = Farm_net.Switch_model.create ~id:1 ~ports:8 () in
      let rng = Rng.create seed in
      let hh_tuple =
        { Flow.src = Ipaddr.of_string "10.0.0.1";
          dst = Ipaddr.of_string "10.0.0.2"; sport = 1; dport = 1;
          proto = Flow.Udp }
      in
      let hh_rate = Rng.uniform rng 1e6 1e7 in
      Farm_net.Switch_model.add_flow sw ~time:0. ~flow_id:0 ~tuple:hh_tuple
        ~rate:hh_rate ~egress:0 ();
      let bg_total = ref 0. in
      for i = 1 to n_bg do
        let r = Rng.uniform rng 1e4 5e5 in
        bg_total := !bg_total +. r;
        Farm_net.Switch_model.add_flow sw ~time:0. ~flow_id:i
          ~tuple:
            { hh_tuple with sport = 100 + i; dport = 200 + i }
          ~rate:r ~egress:(1 + (i mod 7)) ()
      done;
      let true_share = hh_rate /. (hh_rate +. !bg_total) in
      let empirical n =
        let hits = ref 0 in
        for _ = 1 to n do
          match Farm_net.Switch_model.sample_packet sw rng with
          | Some p when p.Flow.tuple = hh_tuple -> incr hits
          | _ -> ()
        done;
        float_of_int !hits /. float_of_int n
      in
      let err n = Float.abs (empirical n -. true_share) in
      let coarse = err 100 and fine = err 8_000 in
      (* the fine estimate must be close to truth (binomial std at
         n = 8000 is < 0.006; 0.04 is > 6 sigma) and not meaningfully
         worse than the coarse one *)
      fine < 0.04 && fine <= coarse +. 0.04)

(* ------------------------------------------------------------------ *)
(* Property: detection within windowing bounds                         *)
(* ------------------------------------------------------------------ *)

(* On a randomly seeded attack mix (background + heavy hitter of random
   intensity), Sonata can only detect at a batch boundary — its latency
   is bounded below by the batch processing delay and above by a full
   window plus processing — while Planck's oversubscribed mirroring
   stays on the millisecond scale regardless of the mix. *)
let prop_detection_within_window_bounds =
  QCheck2.Test.make ~name:"Sonata/Planck latency within windowing bounds"
    ~count:8
    QCheck2.Gen.(pair (int_range 1 100_000) (float_range 5e6 5e7))
    (fun (seed, rate) ->
      let engine = Engine.create ~seed () in
      let topo = Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
      let fabric = Fabric.create topo in
      let rng = Rng.split (Engine.rng engine) in
      Farm_net.Traffic.background engine fabric rng
        { Farm_net.Traffic.default_profile with concurrent_flows = 30;
          mean_rate = 10_000. };
      let sonata = Sonata.deploy engine fabric ~hh_threshold:threshold in
      let planck = Planck.deploy engine fabric ~hh_threshold:threshold in
      inject_hh engine fabric ~rate;
      Engine.run ~until:(onset +. 10.) engine;
      let s_lat =
        Option.map (fun (d, _, _) -> d -. onset)
          (Sonata.first_detection_after sonata onset)
      and p_lat =
        Option.map (fun (d, _, _) -> d -. onset)
          (Planck.first_detection_after planck onset)
      in
      Sonata.shutdown sonata;
      Planck.shutdown planck;
      match (s_lat, p_lat) with
      | Some s, Some p ->
          let c = Sonata.default_config in
          s >= c.Sonata.batch_process_time
          && s <= c.Sonata.window +. c.Sonata.batch_process_time +. 0.5
          && p < 0.02
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Newton                                                              *)
(* ------------------------------------------------------------------ *)

let test_newton_detects () =
  match
    detect_latency
      (fun e f -> Newton.deploy e f ~hh_threshold:threshold)
      (fun t o ->
        Option.map (fun (d, _) -> d) (Newton.first_detection_after t o))
      Newton.shutdown
  with
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "Sonata-like latency (%.2fs)" d)
        true (d <= 3.5)
  | None -> Alcotest.fail "Newton must detect"

let test_newton_dynamic_threshold () =
  (* a 2 MB/s flow is invisible at a 10 MB/s threshold; retuning the query
     at runtime (no redeployment) makes Newton see it *)
  let engine, fabric = make_world ~background:false () in
  let t = Newton.deploy engine fabric ~hh_threshold:1e7 in
  inject_hh engine fabric ~rate:2e6;
  Engine.run ~until:(onset +. 8.) engine;
  Alcotest.(check bool) "silent above threshold" true
    (Newton.first_detection_after t onset = None);
  Newton.update_threshold t 1e6;
  Engine.run ~until:(onset +. 16.) engine;
  Alcotest.(check bool) "detects after live retune" true
    (Newton.first_detection_after t onset <> None);
  Newton.shutdown t

let () =
  Alcotest.run "farm_baselines"
    [ ( "collector",
        [ Alcotest.test_case "rate detection" `Quick
            test_collector_rate_detection ] );
      ( "pipelines",
        [ Alcotest.test_case "sFlow tracks its period" `Quick
            test_sflow_latency_tracks_period;
          Alcotest.test_case "Sonata batch boundary" `Quick
            test_sonata_detects_at_batch_boundary;
          Alcotest.test_case "Planck fast" `Quick test_planck_fast;
          Alcotest.test_case "Helios loop-bounded" `Quick
            test_helios_within_loop ] );
      ( "newton",
        [ Alcotest.test_case "detects" `Quick test_newton_detects;
          Alcotest.test_case "dynamic query retune" `Quick
            test_newton_dynamic_threshold ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sampling_converges_to_hh_ratio;
            prop_detection_within_window_bounds ] ) ]

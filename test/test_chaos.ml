(* Chaos property suite for the fault-injection subsystem.

   Random (topology, task mix, fault plan) cases run under two engine
   seeds; after every applied fault event (and at the end of the run) four
   invariants are checked:

   I1  every live seed runs on a live switch that is in its candidate set;
   I2  dropped tasks are exactly those with no surviving candidate site;
   I3  the placement in force passes [Model.validate] and the seeder's
       [current_utility] matches an independent from-scratch recomputation;
   I4  the same (seed, plan) pair reproduces byte-identical metrics.

   With [auto_heal] the same plans run as *silent* crashes the control
   plane must discover through missing heartbeats, and a fifth invariant
   is checked once healing settles:

   I5  every orphaned seed has been automatically re-placed (or its task
       correctly dropped), live seeds run only on switches that are up,
       no harvester ever accepted a stale-epoch report, and detection /
       recovery latencies stay within the detector's configured bounds.

   With the overload-protection layers enabled and resource-pressure
   faults (traffic surges, report storms, PCIe slowdowns) joining the
   plans, a sixth invariant is checked at the end of the run:

   I6  no queue ever grew past its bound, shed accounting exactly
       balances offered minus delivered at every layer (soil PCIe queue,
       harvester inbox), degraded seeds recover to full fidelity within a
       bounded interval after pressure clears, and replay stays
       byte-identical (the digest covers the overload counters too).

   A failing case prints its generator input and the fault plan, which is
   enough to replay it deterministically (see README "Testing").
   FARM_CHAOS_SEED_OFFSET shifts the engine seeds, letting CI sweep
   independent RNG universes over the same generator cases. *)

open Farm_runtime
module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Fault = Farm_sim.Fault
module Analysis = Farm_almanac.Analysis
module Value = Farm_almanac.Value
module Model = Farm_placement.Model
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Flow = Farm_net.Flow
module Ipaddr = Farm_net.Ipaddr
module Traffic = Farm_net.Traffic
module Switch_model = Farm_net.Switch_model
module Tcam = Farm_net.Tcam
module Trace = Farm_sim.Trace

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* CI sweeps several RNG universes over the same generated cases by
   setting FARM_CHAOS_SEED_OFFSET=n (default 0). *)
let seed_offset =
  match Sys.getenv_opt "FARM_CHAOS_SEED_OFFSET" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Task templates                                                      *)
(* ------------------------------------------------------------------ *)

(* Each template is one small task; [i] uniquifies machine names so a mix
   can repeat a template. *)
let poller_all i =
  Printf.sprintf
    {|
machine PollAll%d {
  place all;
  poll ticks = Poll { .ival = 0.05, .what = port ANY };
  long count = 0;
  state s { when (ticks as stats) do { count = count + 1; } }
}
|}
    i

let roamer i =
  Printf.sprintf
    {|
machine Roam%d {
  place any;
  poll ticks = Poll { .ival = 0.05, .what = port ANY };
  long count = 0;
  state s { when (ticks as stats) do { count = count + 1; } }
}
|}
    i

let pinned i name =
  Printf.sprintf
    {|
machine Pin%d {
  place any "%s";
  time tick = Time { .ival = 0.1 };
  long beats = 0;
  state s { when (tick as t) do { beats = beats + 1; } }
}
|}
    i name

let chatty i =
  Printf.sprintf
    {|
machine Chatty%d {
  place any;
  time tick = Time { .ival = 0.05 };
  state s { when (tick as t) do { send 1 to harvester; } }
}
|}
    i

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)
(* ------------------------------------------------------------------ *)

type topo_kind = Spine of int * int | Lin of int

type case = {
  ck_topo : topo_kind;
  ck_mix : int list;  (* template selectors, 0..3 *)
  ck_plan_seed : int;
  ck_episodes : int;
}

let show_case c =
  Printf.sprintf "{topo=%s; mix=[%s]; plan_seed=%d; episodes=%d}"
    (match c.ck_topo with
    | Spine (s, l) -> Printf.sprintf "spine_leaf %dx%d" s l
    | Lin n -> Printf.sprintf "linear %d" n)
    (String.concat ";" (List.map string_of_int c.ck_mix))
    c.ck_plan_seed c.ck_episodes

let gen_case =
  let open QCheck2.Gen in
  let gen_topo =
    oneof
      [ map2 (fun s l -> Spine (s, l)) (int_range 1 2) (int_range 2 4);
        map (fun n -> Lin n) (int_range 2 4) ]
  in
  let* ck_topo = gen_topo in
  let* ck_mix = list_size (int_range 1 3) (int_range 0 3) in
  let* ck_plan_seed = int_bound 1_000_000 in
  let* ck_episodes = int_range 2 6 in
  return { ck_topo; ck_mix; ck_plan_seed; ck_episodes }

let build_topo = function
  | Spine (s, l) -> Topology.spine_leaf ~spines:s ~leaves:l ~hosts_per_leaf:1
  | Lin n -> Topology.linear ~n

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

(* Independent from-scratch instance, mirroring what the seeder should be
   optimizing over: all registered seeds of the given tasks minus failed
   candidate sites, over the healthy switches' capacities. *)
let oracle_instance seeder tasks =
  let failed = Seeder.failed_switches seeder in
  let pcie = Analysis.resource_index Analysis.Pcie in
  let switches =
    Seeder.soils seeder
    |> List.filter_map (fun soil ->
           let node = Soil.node_id soil in
           if List.mem node failed then None
           else begin
             let caps = Switch_model.caps (Soil.switch soil) in
             let avail = Array.make Analysis.n_resources 0. in
             avail.(Analysis.resource_index Analysis.VCpu) <- caps.vcpu;
             avail.(Analysis.resource_index Analysis.Ram) <- caps.ram_mb;
             avail.(Analysis.resource_index Analysis.TcamR) <-
               float_of_int
                 (Tcam.region_capacity
                    (Switch_model.tcam (Soil.switch soil))
                    Tcam.Monitoring);
             avail.(pcie) <- caps.pcie_bps /. (8. *. Soil.counter_record_bytes);
             Some { Model.node; avail }
           end)
  in
  let seeds =
    List.concat_map (fun (_, task) -> Seeder.seed_specs seeder task) tasks
    |> List.map (fun (s : Model.seed_spec) ->
           { s with
             candidates =
               List.filter (fun c -> not (List.mem c failed)) s.candidates })
    |> List.filter (fun (s : Model.seed_spec) -> s.candidates <> [])
    |> List.sort (fun (a : Model.seed_spec) b -> Int.compare a.seed_id b.seed_id)
  in
  { Model.seeds; switches; alpha_poll = 1.;
    previous = Seeder.current_assignments seeder }

let check_invariants seeder tasks ~at ~what violations =
  let failed = Seeder.failed_switches seeder in
  let vio fmt =
    Printf.ksprintf
      (fun s ->
        violations := Printf.sprintf "t=%.4f after %s: %s" at what s
                      :: !violations)
      fmt
  in
  List.iter
    (fun (name, task) ->
      let specs = Seeder.seed_specs seeder task in
      (* I1: live seeds only on live candidate switches *)
      List.iter
        (fun exec ->
          let node = Seed_exec.node exec in
          let sid = Seed_exec.seed_id exec in
          if List.mem node failed then
            vio "task %s: seed %d runs on failed switch %d" name sid node;
          match
            List.find_opt (fun (s : Model.seed_spec) -> s.seed_id = sid) specs
          with
          | Some s when not (List.mem node s.candidates) ->
              vio "task %s: seed %d on non-candidate switch %d" name sid node
          | Some _ -> ()
          | None -> vio "task %s: seed %d not in registry" name sid)
        (Seeder.seeds seeder task);
      (* I2: dropped <=> no surviving candidate site *)
      let placeable =
        List.exists
          (fun (s : Model.seed_spec) ->
            List.exists (fun c -> not (List.mem c failed)) s.candidates)
          specs
      in
      if placeable <> Seeder.is_placed task then
        vio "task %s: placed=%b but placeable=%b (failed=[%s])" name
          (Seeder.is_placed task) placeable
          (String.concat "," (List.map string_of_int failed)))
    tasks;
  (* I3: the placement in force is valid, and current_utility matches an
     independent recomputation *)
  let assignments = Seeder.current_assignments seeder in
  (match Model.validate (Seeder.placement_instance seeder) assignments with
  | [] -> ()
  | probs -> vio "placement invalid: %s" (String.concat "; " probs));
  let u = Seeder.current_utility seeder in
  let u' = Model.total_utility (oracle_instance seeder tasks) assignments in
  if Float.abs (u -. u') > 1e-6 *. Float.max 1. (Float.abs u) then
    vio "current_utility %.9f <> recomputed %.9f" u u'

(* I5: once healing settles, no seed is left orphaned, nothing runs on a
   dead switch, harvesters never accepted a stale epoch, and detector
   latencies respect the configured bounds.  The latency bound allows one
   detector tick of granularity plus in-flight control latency on top of
   the timeout. *)
let heal_bound =
  Seeder.default_config.Seeder.detection_timeout
  +. (2. *. Seeder.default_config.Seeder.heartbeat_interval)

let check_healed seeder tasks violations =
  let vio fmt =
    Printf.ksprintf
      (fun s -> violations := ("healing settled: " ^ s) :: !violations)
      fmt
  in
  (match Seeder.orphaned_seeds seeder with
  | [] -> ()
  | l ->
      vio "seeds [%s] still orphaned"
        (String.concat "," (List.map string_of_int l)));
  let down = Seeder.down_switches seeder in
  List.iter
    (fun (name, task) ->
      List.iter
        (fun e ->
          if List.mem (Seed_exec.node e) down then
            vio "task %s: seed %d runs on down switch %d" name
              (Seed_exec.seed_id e) (Seed_exec.node e))
        (Seeder.seeds seeder task);
      (* zero stale-epoch reports accepted: walking the acceptance log
         backwards in time, per-seed epochs never increase, and no
         accepted epoch exceeds the seed's current one *)
      let h = Seeder.harvester task in
      let newest = Hashtbl.create 8 in
      List.iter
        (fun (_, (p : Harvester.provenance)) ->
          (match Hashtbl.find_opt newest p.Harvester.p_seed with
          | Some e when p.Harvester.p_epoch > e ->
              vio "task %s: seed %d accepted epoch %d after epoch %d" name
                p.Harvester.p_seed p.Harvester.p_epoch e
          | _ -> Hashtbl.replace newest p.Harvester.p_seed p.Harvester.p_epoch);
          match Seeder.seed_epoch seeder p.Harvester.p_seed with
          | Some cur when p.Harvester.p_epoch > cur ->
              vio "task %s: seed %d accepted epoch %d beyond current %d" name
                p.Harvester.p_seed p.Harvester.p_epoch cur
          | _ -> ())
        (Harvester.accepted_provenance h))
    tasks;
  let open Farm_sim.Metrics in
  let dl = Seeder.detection_latency seeder in
  if Histogram.count dl > 0 && Histogram.max dl > heal_bound then
    vio "detection latency %.4f exceeds %.4f" (Histogram.max dl) heal_bound;
  let rt = Seeder.recovery_time seeder in
  if Histogram.count rt > 0 && Histogram.max rt > heal_bound then
    vio "recovery time %.4f exceeds %.4f" (Histogram.max rt) heal_bound

(* I6: overload resilience.  Checked at the end of the run, after every
   pressure fault has cleared and the AIMD recovery interval has elapsed:
   queues stayed within their bounds, per-layer shed accounting balances
   exactly, and every seed is back at full fidelity. *)
let check_overload seeder tasks violations =
  let vio fmt =
    Printf.ksprintf
      (fun s -> violations := ("overload settled: " ^ s) :: !violations)
      fmt
  in
  List.iter
    (fun soil ->
      let node = Soil.node_id soil in
      match Soil.overload_stats soil with
      | None -> vio "soil %d lost its overload layer" node
      | Some st ->
          let bound =
            match (Soil.config soil).Soil.overload with
            | Some ov -> ov.Soil.max_pcie_queue + 1  (* queued + on the bus *)
            | None -> 0
          in
          if st.Soil.o_queue_peak > bound then
            vio "soil %d: PCIe queue peaked at %d > bound %d" node
              st.Soil.o_queue_peak bound;
          if
            st.Soil.o_offered
            <> st.Soil.o_completed + st.Soil.o_shed + st.Soil.o_pending
          then
            vio
              "soil %d: shed accounting broken: offered %d <> %d done + %d \
               shed + %d pending"
              node st.Soil.o_offered st.Soil.o_completed st.Soil.o_shed
              st.Soil.o_pending)
    (Seeder.soils seeder);
  List.iter
    (fun (name, task) ->
      let h = Seeder.harvester task in
      let offered = Harvester.offered_count h in
      let accounted =
        Harvester.received_count h + Harvester.stale_dropped h
        + Harvester.dup_dropped h + Harvester.shed_count h
      in
      if offered <> accounted then
        vio "task %s: inbox accounting broken: offered %d <> accounted %d"
          name offered accounted;
      (* bounded recovery: pressure faults all clear within the plan
         horizon, so by the end of the run every surviving seed must have
         recovered to full fidelity *)
      List.iter
        (fun e ->
          let d = Seed_exec.degradation e in
          if d <> 0. then
            vio "task %s: seed %d still degraded (%.6f) after pressure" name
              (Seed_exec.seed_id e) d)
        (Seeder.seeds seeder task))
    tasks

(* ------------------------------------------------------------------ *)
(* Case execution                                                      *)
(* ------------------------------------------------------------------ *)

let host_addr (n : Topology.node) =
  match n.prefix with
  | Some p -> Ipaddr.of_int (Ipaddr.to_int (Ipaddr.Prefix.address p) + 10)
  | None -> invalid_arg "host_addr: not a host"

let digest seeder engine fabric tasks =
  let b = Buffer.create 512 in
  Printf.bprintf b "dispatched=%d\n" (Engine.dispatched engine);
  Printf.bprintf b "collector=%.6f/%d\n"
    (Seeder.collector_bytes seeder)
    (Seeder.collector_messages seeder);
  Printf.bprintf b "migrations=%d retx=%d lost=%d\n" (Seeder.migrations seeder)
    (Seeder.retransmissions seeder)
    (Seeder.lost_messages seeder);
  Printf.bprintf b "utility=%.9f\n" (Seeder.current_utility seeder);
  Printf.bprintf b "failed=[%s]\n"
    (String.concat ","
       (List.map string_of_int (Seeder.failed_switches seeder)));
  Printf.bprintf b "flows=%d rerouted=%d dropped=%d\n"
    (Fabric.active_flow_count fabric)
    (Fabric.rerouted_flows fabric)
    (Fabric.dropped_flows fabric);
  List.iter
    (fun soil ->
      let st = Soil.poll_stats soil in
      Printf.bprintf b "soil%d: req=%d done=%d drop=%d asic=%d pcie=%.3f\n"
        (Soil.node_id soil) st.Soil.requested st.Soil.completed st.Soil.dropped
        st.Soil.asic_polls st.Soil.pcie_bytes)
    (Seeder.soils seeder);
  List.iter
    (fun (name, task) ->
      let seeds =
        Seeder.seeds seeder task
        |> List.sort (fun a b ->
               Int.compare (Seed_exec.seed_id a) (Seed_exec.seed_id b))
      in
      Printf.bprintf b "task %s placed=%b seeds=[%s]\n" name
        (Seeder.is_placed task)
        (String.concat ";"
           (List.map
              (fun e ->
                Printf.sprintf "%d@%d:%s:%d" (Seed_exec.seed_id e)
                  (Seed_exec.node e) (Seed_exec.state e)
                  (Seed_exec.transitions e))
              seeds)))
    tasks;
  Buffer.contents b

(* healing counters join the determinism digest when auto_heal is on *)
let healing_digest seeder tasks =
  let hist h =
    Printf.sprintf "%d/%.9f"
      (Farm_sim.Metrics.Histogram.count h)
      (Farm_sim.Metrics.Histogram.mean h)
  in
  let b = Buffer.create 128 in
  Printf.bprintf b
    "heal: hb=%d/%d ck=%d gaps=%d bytes=%.3f det=%d false=%d rec=%d \
     zfenced=%d fsends=%d zlive=%d\n"
    (Seeder.heartbeats_sent seeder)
    (Seeder.heartbeats_delivered seeder)
    (Seeder.checkpoints_shipped seeder)
    (Seeder.checkpoint_gaps seeder)
    (Seeder.checkpoint_bytes seeder)
    (Seeder.detections seeder)
    (Seeder.false_detections seeder)
    (Seeder.auto_recoveries seeder)
    (Seeder.zombies_fenced seeder)
    (Seeder.fenced_sends seeder)
    (Seeder.zombie_count seeder);
  Printf.bprintf b "heal: dl=%s rt=%s\n"
    (hist (Seeder.detection_latency seeder))
    (hist (Seeder.recovery_time seeder));
  List.iter
    (fun (name, task) ->
      let h = Seeder.harvester task in
      Printf.bprintf b "heal %s: stale=%d dup=%d epochs=[%s]\n" name
        (Harvester.stale_dropped h) (Harvester.dup_dropped h)
        (String.concat ";"
           (Seeder.seeds seeder task
           |> List.sort (fun a b ->
                  Int.compare (Seed_exec.seed_id a) (Seed_exec.seed_id b))
           |> List.map (fun e ->
                  Printf.sprintf "%d:%d" (Seed_exec.seed_id e)
                    (Seed_exec.epoch e)))))
    tasks;
  Buffer.contents b

(* overload counters join the determinism digest for the I6 sweep: shed
   decisions, breaker trips and AIMD trajectories must all replay
   byte-identically, not just the task-level outcomes *)
let overload_digest seeder tasks =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "ov ctrl: ratelim=%d brkdrop=%d retrycap=%d opens=%d storm=%d \
     press=%d@[%s]\n"
    (Seeder.rate_limited seeder)
    (Seeder.breaker_dropped seeder)
    (Seeder.retry_capped seeder)
    (Seeder.breaker_opens seeder)
    (Seeder.storm_reports seeder)
    (Seeder.pressure_events seeder)
    (String.concat ","
       (List.map string_of_int (Seeder.pressured_switches seeder)));
  List.iter
    (fun soil ->
      match Soil.overload_stats soil with
      | None -> ()
      | Some st ->
          Printf.bprintf b
            "ov soil%d: off=%d done=%d shed=%d pend=%d peak=%d pcie=%.3f\n"
            (Soil.node_id soil) st.Soil.o_offered st.Soil.o_completed
            st.Soil.o_shed st.Soil.o_pending st.Soil.o_queue_peak
            (Soil.pcie_factor soil))
    (Seeder.soils seeder);
  List.iter
    (fun (name, task) ->
      let h = Seeder.harvester task in
      Printf.bprintf b "ov %s: off=%d shed=%d recv=%d seeds=[%s]\n" name
        (Harvester.offered_count h) (Harvester.shed_count h)
        (Harvester.received_count h)
        (String.concat ";"
           (Seeder.seeds seeder task
           |> List.sort (fun a b ->
                  Int.compare (Seed_exec.seed_id a) (Seed_exec.seed_id b))
           |> List.map (fun e ->
                  Printf.sprintf "%d:%.6f:%d" (Seed_exec.seed_id e)
                    (Seed_exec.degradation e)
                    (Seed_exec.poll_drops e)))))
    tasks;
  Buffer.contents b

(* the overload sweep marks the polling templates' [ticks] trigger as
   adaptive, so AIMD degraded mode actually engages under pressure *)
let deploy_mix ?(adaptive = false) seeder topo prng mix =
  List.mapi
    (fun i idx ->
      let name, source =
        match idx mod 4 with
        | 0 -> (Printf.sprintf "pollall%d" i, poller_all i)
        | 1 -> (Printf.sprintf "roam%d" i, roamer i)
        | 2 ->
            let sws = Array.of_list (Topology.switches topo) in
            let sw = sws.(Rng.int prng (Array.length sws)) in
            (Printf.sprintf "pin%d" i, pinned i sw.Topology.name)
        | _ -> (Printf.sprintf "chatty%d" i, chatty i)
      in
      let spec = Seeder.simple_spec ~name ~source in
      let spec =
        if adaptive && idx mod 4 <= 1 then
          { spec with Seeder.ts_adaptive = [ "ticks" ] }
        else spec
      in
      match Seeder.deploy seeder spec with
      | Ok t -> (name, t)
      | Error m -> failwith (Printf.sprintf "chaos deploy %s: %s" name m))
    mix

(* Every case flies with a bounded flight recorder attached: the last
   [512] trace events before an invariant violation are dumped to
   CHAOS_flight.json (CI uploads it on failure) — enough context to see
   what the control plane was doing without retracing the whole run. *)
let flight_ring = 512
let flight_path = "CHAOS_flight.json"

let dump_flight recorder ~at ~what =
  let oc = open_out_bin flight_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Trace.to_chrome_json recorder));
  Printf.eprintf
    "chaos: invariant violated (%s at %.4fs); last %d/%d trace event(s) \
     dumped to %s\n"
    what at (Trace.count recorder)
    (Trace.count recorder + Trace.dropped recorder)
    flight_path

let run_case ?(config = Seeder.default_config) ?(overload = false)
    ?(until = 2.) ~seed (c : case) =
  let engine = Engine.create ~seed () in
  let recorder = Trace.create ~ring:flight_ring () in
  Engine.set_tracer engine (Some recorder);
  let topo = build_topo c.ck_topo in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create ~config engine fabric in
  (* the plan rng is independent of the engine seed, so both engine-seed
     runs of a case see the same faults; each case gets its own stream
     keyed by the generated plan seed *)
  let prng = Rng.stream (Rng.create 0x5eed) c.ck_plan_seed in
  let tasks = deploy_mix ~adaptive:overload seeder topo prng c.ck_mix in
  (* one light end-to-end flow so link faults have something to reroute *)
  (match Topology.hosts topo with
  | h1 :: (_ :: _ as rest) ->
      let h2 = List.nth rest (List.length rest - 1) in
      let tuple =
        { Flow.src = host_addr h1; dst = host_addr h2;
          sport = 1234; dport = 80; proto = Flow.Tcp }
      in
      ignore (Fabric.start_flow fabric ~time:0. ~tuple ~rate:50_000. ())
  | _ -> ());
  let plan =
    Fault.random_plan ~rng:prng ~switches:(Topology.switch_ids topo)
      ~links:(Topology.switch_links topo) ~episodes:c.ck_episodes ~horizon:1.5
      ~overload ()
  in
  let violations = ref [] in
  (* dump the recorder at the *first* violation, while the ring still
     holds the events leading up to it *)
  let dumped = ref false in
  let checked ~at ~what =
    if !violations <> [] && not !dumped then begin
      dumped := true;
      dump_flight recorder ~at ~what
    end
  in
  Chaos.inject seeder plan ~on_applied:(fun at ev ->
      let what = Fault.event_to_string ev in
      check_invariants seeder tasks ~at ~what violations;
      checked ~at ~what);
  Engine.run ~until engine;
  check_invariants seeder tasks ~at:until ~what:"end of run" violations;
  checked ~at:until ~what:"end of run";
  let d = digest seeder engine fabric tasks in
  let d =
    if Seeder.healing_enabled seeder then begin
      (* the plan's horizon is 1.5 and we run past it: healing has settled *)
      check_healed seeder tasks violations;
      checked ~at:until ~what:"healing settled";
      d ^ healing_digest seeder tasks
    end
    else d
  in
  let d =
    if overload then begin
      check_overload seeder tasks violations;
      checked ~at:until ~what:"overload settled";
      d ^ overload_digest seeder tasks
    end
    else d
  in
  (List.rev !violations, d, plan)

(* engine seeds for the two RNG universes of a sweep offset: derived
   streams of the root seeds rather than ad-hoc [seed + offset] sums *)
let seed_a = Rng.derive_seed 101 ~stream:seed_offset
let seed_b = Rng.derive_seed 202 ~stream:seed_offset

let chaos_property ?config ?overload ?until name =
  QCheck2.Test.make ~name ~count:100 ~print:show_case gen_case (fun c ->
      let v1, d1, plan = run_case ?config ?overload ?until ~seed:seed_a c in
      let v1b, d1b, _ = run_case ?config ?overload ?until ~seed:seed_a c in
      let v2, _, _ = run_case ?config ?overload ?until ~seed:seed_b c in
      if v1 <> [] || v2 <> [] then
        QCheck2.Test.fail_reportf "invariant violations:\n%s\nplan:\n%s"
          (String.concat "\n" (v1 @ v2))
          (Fault.to_string plan)
      else if d1 <> d1b then
        QCheck2.Test.fail_reportf
          "nondeterminism: same (seed, plan) digests differ\n--- run 1\n%s\n\
           --- run 2\n%s"
          d1 d1b
      else (
        ignore v1b;
        true))

let prop_chaos = chaos_property "chaos: invariants hold under random fault plans"

(* the same plans, but crashes are silent and the control plane must heal
   itself: heartbeats -> detector -> checkpoint-restore re-placement *)
let prop_chaos_healing =
  chaos_property
    ~config:{ Seeder.default_config with Seeder.auto_heal = true }
    "chaos: self-healing re-places every orphan (I5)"

(* overload plans add traffic surges, report storms and PCIe slowdowns to
   the fault pool; the full protection stack (bounded queues, AIMD seeds,
   breakers, rate limiter) is armed, and healing stays on so breaker-open
   heartbeat paths are exercised against false migration storms.  Faults
   clear by t=1.5 and we run to 2.5, leaving > 8 AIMD recovery ticks
   (0.05s apart) before I6 demands full fidelity. *)
let prop_chaos_overload =
  chaos_property
    ~config:{ Seeder.overload_defaults with Seeder.auto_heal = true }
    ~overload:true ~until:2.5
    "chaos: overload resilience (I6) under surge/storm/slowdown plans"

(* ------------------------------------------------------------------ *)
(* The suite catches a deliberately broken recovery path               *)
(* ------------------------------------------------------------------ *)

let test_broken_recovery_caught () =
  let engine = Engine.create ~seed:7 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let leaf0 =
    (List.find (fun n -> n.Topology.name = "leaf0") (Topology.switches topo))
      .Topology.id
  in
  let tasks =
    List.map
      (fun (name, source) ->
        match Seeder.deploy seeder (Seeder.simple_spec ~name ~source) with
        | Ok t -> (name, t)
        | Error m -> Alcotest.failf "deploy %s: %s" name m)
      [ ("pin0", pinned 0 "leaf0"); ("roam1", roamer 1) ]
  in
  Engine.run ~until:0.1 engine;
  let collect () =
    let v = ref [] in
    check_invariants seeder tasks ~at:(Engine.now engine) ~what:"manual" v;
    List.rev !v
  in
  Alcotest.(check (list string)) "healthy: no violations" [] (collect ());
  Seeder.fail_switch seeder leaf0;
  (* correct failure handling: the pinned task is dropped, no violations *)
  Alcotest.(check bool) "pinned task dropped" false
    (Seeder.is_placed (List.assoc "pin0" tasks));
  Alcotest.(check (list string)) "after failure: no violations" []
    (collect ());
  (* broken recovery: skipping re-optimization leaves the pinned task
     unplaced although its candidate site is live again — the suite's I2
     must flag it *)
  Seeder.recover_switch ~reoptimize:false seeder leaf0;
  Alcotest.(check bool) "broken recovery caught" true (collect () <> []);
  (* the correct path clears the violation and restores the task *)
  Seeder.reoptimize seeder;
  Alcotest.(check (list string)) "after reoptimize: no violations" []
    (collect ());
  Alcotest.(check bool) "pinned task restored" true
    (Seeder.is_placed (List.assoc "pin0" tasks))

(* ------------------------------------------------------------------ *)
(* fail_switch -> recover_switch round-trip on the Fig. 4 scenario     *)
(* ------------------------------------------------------------------ *)

let deploy_hh seeder =
  let entry = Farm_tasks.Catalog.find "heavy-hitter" in
  let entry =
    { entry with
      Farm_tasks.Task_common.externals =
        [ ("HH",
           [ ("threshold", Value.Num 1e7); ("interval", Value.Num 1e-3);
             ("hitterAction", Value.Action (Farm_net.Tcam.Set_qos 1)) ]) ] }
  in
  match Seeder.deploy seeder (Farm_tasks.Task_common.to_task_spec entry) with
  | Ok t -> t
  | Error m -> Alcotest.failf "heavy-hitter deploy: %s" m

let test_fig4_fail_recover_roundtrip () =
  (* the Fig. 4 world: spine-leaf fabric, background traffic, the catalog
     heavy-hitter task (scaled down from the bench's 8 hosts/leaf) *)
  let topo = Topology.spine_leaf ~spines:4 ~leaves:4 ~hosts_per_leaf:2 in
  let engine = Engine.create ~seed:2 () in
  let fabric = Fabric.create topo in
  let rng = Rng.split (Engine.rng engine) in
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 16;
      mean_rate = 20_000. };
  let seeder = Seeder.create engine fabric in
  let _task = deploy_hh seeder in
  Engine.run ~until:0.5 engine;
  let u0 = Seeder.current_utility seeder in
  let leaf =
    List.find (fun n -> n.Topology.name = "leaf1") (Topology.switches topo)
  in
  Seeder.fail_switch seeder leaf.Topology.id;
  let u_down = Seeder.current_utility seeder in
  Alcotest.(check bool) "utility degrades while the switch is down" true
    (u_down < u0);
  Engine.run ~until:1.0 engine;
  Seeder.recover_switch seeder leaf.Topology.id;
  Engine.run ~until:1.5 engine;
  let u1 = Seeder.current_utility seeder in
  Alcotest.(check bool)
    (Printf.sprintf
       "utility restored within heuristic tolerance (u0=%.6f u1=%.6f)" u0 u1)
    true
    (Float.abs (u1 -. u0) <= (0.01 *. Float.abs u0) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Determinism regression: an exp_fig4-style scenario, run twice       *)
(* ------------------------------------------------------------------ *)

let exp_style_metrics seed =
  let topo = Topology.spine_leaf ~spines:4 ~leaves:4 ~hosts_per_leaf:2 in
  let engine = Engine.create ~seed () in
  let fabric = Fabric.create topo in
  let rng = Rng.split (Engine.rng engine) in
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 16;
      mean_rate = 20_000. };
  let _ = Traffic.heavy_hitter engine fabric rng ~at:1.0 ~rate:2e6 () in
  let seeder = Seeder.create engine fabric in
  let task = deploy_hh seeder in
  Engine.run ~until:2. engine;
  digest seeder engine fabric [ ("hh", task) ]

let test_determinism_regression () =
  Alcotest.(check string) "identical Metrics output for identical seeds"
    (exp_style_metrics 5) (exp_style_metrics 5);
  (* a different seed must actually change the run (guards against the
     digest being trivially constant) *)
  Alcotest.(check bool) "different seed differs" true
    (exp_style_metrics 5 <> exp_style_metrics 6)

let () =
  Alcotest.run "farm_chaos"
    [ ( "chaos",
        Alcotest.test_case "broken recovery caught" `Quick
          test_broken_recovery_caught
        :: qsuite [ prop_chaos; prop_chaos_healing; prop_chaos_overload ] );
      ( "roundtrip",
        [ Alcotest.test_case "fig4 fail/recover round-trip" `Quick
            test_fig4_fail_recover_roundtrip ] );
      ( "determinism",
        [ Alcotest.test_case "exp scenario digest stable" `Quick
            test_determinism_regression ] ) ]

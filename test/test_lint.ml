(* Static-verification tests: the fixture corpus (each file triggers
   exactly one diagnostic code), the clean corpus (catalog + examples),
   cross-task conflict detection, bounds-vs-simulation consistency, and
   the pretty/parse/lint round-trip property. *)

module Ast = Farm_almanac.Ast
module Parser = Farm_almanac.Parser
module Typecheck = Farm_almanac.Typecheck
module Analysis = Farm_almanac.Analysis
module Lint = Farm_almanac.Lint
module Bounds = Farm_almanac.Bounds
module Diagnostic = Farm_almanac.Diagnostic
module Pretty = Farm_almanac.Pretty
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Switch_model = Farm_net.Switch_model
module Conflict = Farm_placement.Conflict
module Engine = Farm_sim.Engine
module Seeder = Farm_runtime.Seeder
module Soil = Farm_runtime.Soil
module Cpu_model = Farm_runtime.Cpu_model
module Task_common = Farm_tasks.Task_common
module Catalog = Farm_tasks.Catalog

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let codes ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

(* ------------------------------------------------------------------ *)
(* The farmc lint pipeline: parse -> typecheck -> lint -> bounds       *)
(* ------------------------------------------------------------------ *)

let load_diags ?extra source =
  match Parser.program_result source with
  | Error d -> Error [ d ]
  | Ok parsed -> (
      match Typecheck.check_diags ?extra parsed with
      | Ok p -> Ok p
      | Error ds -> Error ds)

let analysis_bindings (m : Ast.machine) bound : Analysis.bindings =
  let static name =
    List.find_map
      (fun (v : Ast.var_decl) ->
        if v.vname = name then
          match v.vinit with
          | Some (Ast.Int i) -> Some (Farm_almanac.Value.Num (float_of_int i))
          | Some (Ast.Float f) -> Some (Farm_almanac.Value.Num f)
          | Some (Ast.String s) -> Some (Farm_almanac.Value.Str s)
          | Some (Ast.Bool b) -> Some (Farm_almanac.Value.Bool b)
          | _ -> None
        else None)
      m.mvars
  in
  fun name ->
    match List.assoc_opt name bound with
    | Some v -> Some v
    | None -> static name

let machine_bound externals mname =
  Option.value (List.assoc_opt mname externals) ~default:[]

let lint_all ~file ?extra ?(externals = []) source =
  match load_diags ?extra source with
  | Error ds -> (Diagnostic.with_file file ds, None)
  | Ok p ->
      let bound_names =
        List.map (fun (m, vs) -> (m, List.map fst vs)) externals
      in
      let lint = Lint.check_program ~file ~externals:bound_names p in
      let bounds =
        List.concat_map
          (fun (m : Ast.machine) ->
            let bindings =
              analysis_bindings m (machine_bound externals m.mname)
            in
            match Analysis.polls ~bindings m with
            | Error _ -> []
            | Ok polls ->
                let state_utils =
                  List.filter_map
                    (fun (st : Ast.state_decl) ->
                      Option.bind st.sutil (fun u ->
                          match Analysis.utility ~bindings u with
                          | Ok branches -> Some (st.sname, branches)
                          | Error _ -> None))
                    m.states
                in
                Bounds.cross_check ~file ~machine:m ~polls ~state_utils ())
          p.machines
      in
      (Diagnostic.sort (lint @ bounds), Some p)

(* ------------------------------------------------------------------ *)
(* Fixture corpus                                                      *)
(* ------------------------------------------------------------------ *)

let error_codes =
  [ "P001"; "P002"; "T002"; "T006"; "L105"; "L106"; "L107" ]

let fixtures =
  [ ("p001_bad_token.alm", [ "P001" ]);
    ("p002_syntax.alm", [ "P002" ]);
    ("t002_unbound.alm", [ "T002" ]);
    ("t006_bad_transit.alm", [ "T006" ]);
    ("l101_unreachable.alm", [ "L101" ]);
    ("l102_dead_transit.alm", [ "L102" ]);
    ("l103_unused_var.alm", [ "L103" ]);
    ("l104_unused_trigger.alm", [ "L104" ]);
    ("l105_nonlinear_util.alm", [ "L105" ]);
    ("l106_missing_external.alm", [ "L106" ]);
    ("l107_livelock.alm", [ "L107" ]);
    ("b201_understated_util.alm", [ "B201" ]);
    ("clean.alm", []) ]

let test_fixtures () =
  List.iter
    (fun (name, expected) ->
      let path = Filename.concat "lint_fixtures" name in
      let ds, _ = lint_all ~file:path (read_file path) in
      Alcotest.(check (list string)) name expected (codes ds);
      List.iter
        (fun (d : Diagnostic.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s severity of %s" name d.code)
            (List.mem d.code error_codes)
            (Diagnostic.is_error d);
          Alcotest.(check bool)
            (Printf.sprintf "%s positioned" name)
            true (d.pos <> Ast.no_pos))
        ds)
    fixtures

(* ------------------------------------------------------------------ *)
(* Clean corpus: every catalog task and every shipped example lints    *)
(* with zero per-task diagnostics                                      *)
(* ------------------------------------------------------------------ *)

let test_clean_catalog () =
  Alcotest.(check bool) "catalog nonempty" true (List.length Catalog.all > 10);
  List.iter
    (fun (e : Task_common.entry) ->
      let ds, _ =
        lint_all ~file:("catalog:" ^ e.name) ~extra:e.extra_sigs
          ~externals:e.externals e.source
      in
      if ds <> [] then
        Alcotest.failf "catalog task %s not clean:\n%s" e.name
          (String.concat "\n" (List.map Diagnostic.to_string ds)))
    Catalog.all

let test_clean_examples () =
  let dir = Filename.concat ".." "examples" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".alm")
    |> List.sort compare
  in
  Alcotest.(check bool) "examples shipped" true (List.length files >= 2);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ds, _ = lint_all ~file:path (read_file path) in
      if ds <> [] then
        Alcotest.failf "example %s not clean:\n%s" f
          (String.concat "\n" (List.map Diagnostic.to_string ds)))
    files

(* ------------------------------------------------------------------ *)
(* Cross-task conflict detection                                       *)
(* ------------------------------------------------------------------ *)

let filt s =
  match Analysis.eval_filter (Parser.expression s) with
  | Ok f -> f
  | Error e -> Alcotest.fail e

let test_filter_overlap () =
  let ov a b = Conflict.overlap (filt a) (filt b) in
  Alcotest.(check bool) "same port" true (ov "dstPort 80" "dstPort 80");
  Alcotest.(check bool) "different dst ports" false
    (ov "dstPort 80" "dstPort 443");
  Alcotest.(check bool) "nested prefixes" true
    (ov {|dstIP "10.0.0.0/8"|} {|dstIP "10.1.0.0/16"|});
  Alcotest.(check bool) "disjoint prefixes" false
    (ov {|dstIP "10.2.0.0/16"|} {|dstIP "10.3.0.0/16"|});
  Alcotest.(check bool) "wildcard overlaps everything" true
    (ov "port ANY" "dstPort 443")

(* installs a drop rule for web traffic once, one second in *)
let blocker_source =
  {|
machine Blocker {
  place all;
  time tick = Time { .ival = 1 };
  long armed = 0;
  state s {
    when (tick as t) do {
      if (armed == 0) then {
        addTCAMRule(mkRule(dstPort 80, drop_action()));
        armed = 1;
      }
    }
  }
}
|}

(* rate-limits the same traffic: C301 against Blocker *)
let limiter_source =
  {|
machine Limiter {
  place all;
  time tick = Time { .ival = 1 };
  long armed = 0;
  state s {
    when (tick as t) do {
      if (armed == 0) then {
        addTCAMRule(mkRule(dstPort 80, rate_limit_action(1000)));
        armed = 1;
      }
    }
  }
}
|}

(* watches all ports: Blocker's drop rule blinds it (C302) *)
let watcher_source =
  {|
machine Watcher {
  place all;
  poll counters = Poll { .ival = 0.5, .what = port ANY };
  float total = 0;
  state s {
    when (counters as stats) do { total = total + 1; }
  }
}
|}

let profile_of ~task source =
  let p =
    match load_diags source with
    | Ok p -> p
    | Error ds ->
        Alcotest.failf "profile_of %s: %s" task
          (String.concat "; " (List.map Diagnostic.to_string ds))
  in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:4 ~hosts_per_leaf:2 in
  let summaries =
    List.filter_map
      (fun (m : Ast.machine) ->
        match Analysis.summarize ~topo m with
        | Ok s -> Some (s, Analysis.no_bindings)
        | Error e -> Alcotest.fail e)
      p.machines
  in
  Conflict.profile ~task summaries

let test_conflict_c301 () =
  let ds =
    Conflict.check
      [ profile_of ~task:"blocker" blocker_source;
        profile_of ~task:"limiter" limiter_source ]
  in
  Alcotest.(check bool) "C301 reported" true (List.mem "C301" (codes ds));
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check bool) "conflicts are warnings" false
        (Diagnostic.is_error d))
    ds

let test_conflict_c302 () =
  let ds =
    Conflict.check
      [ profile_of ~task:"watcher" watcher_source;
        profile_of ~task:"blocker" blocker_source ]
  in
  Alcotest.(check bool) "C302 reported" true (List.mem "C302" (codes ds))

(* same reaction on a disjoint pattern: no conflict *)
let blocker443_source =
  {|
machine Blocker443 {
  place all;
  time tick = Time { .ival = 1 };
  long armed = 0;
  state s {
    when (tick as t) do {
      if (armed == 0) then {
        addTCAMRule(mkRule(dstPort 443, drop_action()));
        armed = 1;
      }
    }
  }
}
|}

let test_conflict_disjoint () =
  let ds =
    Conflict.check
      [ profile_of ~task:"blocker80" blocker_source;
        profile_of ~task:"blocker443" blocker443_source ]
  in
  Alcotest.(check (list string)) "no conflicts on disjoint ports" [] (codes ds)

(* ------------------------------------------------------------------ *)
(* Seeder integration: deploy-time verification                        *)
(* ------------------------------------------------------------------ *)

let make_world ?config () =
  let engine = Engine.create ~seed:11 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  (engine, Seeder.create ?config engine fabric)

let livelock_source =
  {|
machine Spin {
  place all;
  time tick = Time { .ival = 1 };
  long n = 0;
  state a {
    when (enter) do { transit a; }
    when (tick as t) do { n = n + 1; }
  }
}
|}

let test_seeder_refuses_livelock () =
  let _, seeder = make_world () in
  (match Seeder.deploy seeder (Seeder.simple_spec ~name:"spin" ~source:livelock_source) with
  | Ok _ -> Alcotest.fail "livelock program deployed"
  | Error m ->
      Alcotest.(check bool) "mentions lint" true
        (String.length m >= 4 && String.sub m 0 4 = "lint"));
  Alcotest.(check bool) "L107 recorded" true
    (List.mem "L107" (codes (Seeder.last_deploy_diagnostics seeder)))

let test_seeder_conflict_warns () =
  let _, seeder = make_world () in
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"blocker" ~source:blocker_source)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy blocker: %s" m);
  Alcotest.(check (list string)) "first deploy clean" []
    (codes (Seeder.last_deploy_diagnostics seeder));
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"limiter" ~source:limiter_source)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy limiter: %s" m);
  Alcotest.(check bool) "C301 recorded on second deploy" true
    (List.mem "C301" (codes (Seeder.last_deploy_diagnostics seeder)))

let test_seeder_refuses_conflicts () =
  let _, seeder =
    make_world
      ~config:{ Seeder.default_config with refuse_conflicts = true } ()
  in
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"blocker" ~source:blocker_source)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy blocker: %s" m);
  match
    Seeder.deploy seeder
      (Seeder.simple_spec ~name:"limiter" ~source:limiter_source)
  with
  | Ok _ -> Alcotest.fail "conflicting task deployed despite refuse_conflicts"
  | Error m ->
      Alcotest.(check bool) "mentions conflict" true
        (List.mem "C301" (codes (Seeder.last_deploy_diagnostics seeder)));
      ignore m

(* ------------------------------------------------------------------ *)
(* Bounds vs. simulation: the inferred ceiling dominates the observed  *)
(* per-seed usage and stays within 2x for a deterministic machine      *)
(* ------------------------------------------------------------------ *)

let bounds_probe_source =
  {|
machine BoundsProbe {
  place all;
  poll counters = Poll { .ival = 0.05, .what = port ANY };
  float total = 0;
  state watching {
    when (counters as stats) do { total = total + 1; }
  }
}
|}

let test_bounds_vs_simulation () =
  let engine, seeder = make_world () in
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"bounds-probe" ~source:bounds_probe_source)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy: %s" m);
  let duration = 10. in
  Engine.run ~until:duration engine;
  let machine, polls =
    match load_diags bounds_probe_source with
    | Error _ -> Alcotest.fail "bounds probe does not typecheck"
    | Ok p -> (
        let m = List.hd p.machines in
        match Analysis.polls m with
        | Ok polls -> (m, polls)
        | Error e -> Alcotest.fail e)
  in
  let res = Array.make Analysis.n_resources 0. in
  List.iter
    (fun soil ->
      Alcotest.(check int) "one seed per soil" 1 (Soil.seed_count soil);
      (* calibrate the per-fabric parameter; everything else is the
         default cost model *)
      let ports = Switch_model.port_count (Soil.switch soil) in
      let model = { Bounds.default_model with port_count = ports } in
      let d = Bounds.infer ~model ~machine ~polls ~res () in
      Alcotest.(check bool) "deterministic" true d.deterministic;
      let observed = Cpu_model.busy_seconds (Soil.cpu soil) /. duration in
      Alcotest.(check bool) "seed did run" true (observed > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "cpu ceiling holds (%.3g >= %.3g)" d.vcpu_worst
           observed)
        true
        (d.vcpu_worst >= observed *. 0.999);
      Alcotest.(check bool)
        (Printf.sprintf "cpu ceiling within 2x (%.3g <= 2 * %.3g)"
           d.vcpu_worst observed)
        true
        (d.vcpu_worst <= 2. *. observed);
      let ps : Soil.poll_stats = Soil.poll_stats soil in
      let reads = ps.pcie_bytes /. Soil.counter_record_bytes /. duration in
      Alcotest.(check bool) "pcie reads observed" true (reads > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "pcie ceiling holds (%.3g >= %.3g)"
           d.pcie_reads_worst reads)
        true
        (d.pcie_reads_worst >= reads *. 0.999);
      Alcotest.(check bool)
        (Printf.sprintf "pcie ceiling within 2x (%.3g <= 2 * %.3g)"
           d.pcie_reads_worst reads)
        true
        (d.pcie_reads_worst <= 2. *. reads))
    (Seeder.soils seeder)

(* ------------------------------------------------------------------ *)
(* Property: pretty -> parse -> pretty is a fixpoint for well-formed   *)
(* machines, and lint diagnostics are stable across the round-trip     *)
(* ------------------------------------------------------------------ *)

let gen_machine =
  let open QCheck2.Gen in
  let p = Ast.no_pos in
  let tick =
    { Ast.ttyp = Ast.Time; tname = "tick";
      tinit = Some (Ast.StructLit ("Time", [ ("ival", Ast.Int 1) ]));
      tloc = p }
  in
  let var_n =
    { Ast.is_external = false; vtyp = Ast.Tlong; vname = "n";
      vinit = Some (Ast.Int 0); vloc = p }
  in
  int_range 1 3 >>= fun nstates ->
  let names = List.init nstates (Printf.sprintf "s%d") in
  let gen_target = oneofl names in
  let gen_stmt =
    oneof
      [ map
          (fun k ->
            Ast.stmt (Ast.Assign ("n", Ast.Binop (Ast.Add, Ast.Var "n", Ast.Int k))))
          (int_range 0 9);
        map (fun t -> Ast.stmt (Ast.Transit (Ast.Var t))) gen_target;
        map2
          (fun k t ->
            Ast.stmt
              (Ast.If
                 ( Ast.Binop (Ast.Lt, Ast.Var "n", Ast.Int k),
                   [ Ast.stmt (Ast.Transit (Ast.Var t)) ],
                   [] )))
          (int_range 0 9) gen_target ]
  in
  let gen_state name =
    list_size (int_range 1 3) gen_stmt >>= fun body ->
    return
      { Ast.sname = name; slocals = []; sutil = None;
        sevents =
          [ { Ast.trigger = Ast.On_trigger_var ("tick", Some "t"); body;
              evloc = p } ];
        stloc = p }
  in
  flatten_l (List.map gen_state names) >>= fun states ->
  return
    { Ast.mname = "M"; extends = None;
      places = [ { Ast.pquant = Ast.QAll; pconstraint = Ast.Anywhere; ploc = p } ];
      mvars = [ var_n ]; mtrigs = [ tick ]; states; mevents = []; mloc = p }

let prop_machine_roundtrip =
  QCheck2.Test.make ~name:"machine pretty/parse fixpoint + lint stability"
    ~count:100 gen_machine (fun m ->
      let p1 = { Ast.funcs = []; machines = [ m ] } in
      let s1 = Pretty.program_to_string p1 in
      match Parser.program_result s1 with
      | Error _ -> false
      | Ok p2 ->
          let s2 = Pretty.program_to_string p2 in
          (* generated machines carry no positions, so diagnostic codes
             are compared as sorted multisets: the position-major sort
             orders them differently once the reparse adds spans *)
          let sorted_codes p = List.sort compare (codes (Lint.check_program p)) in
          s1 = s2
          && Ast.strip_pos p2 = Ast.strip_pos p1
          && sorted_codes p1 = sorted_codes p2)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "farm_lint"
    [ ( "fixtures",
        [ Alcotest.test_case "one code per fixture" `Quick test_fixtures ] );
      ( "clean corpus",
        [ Alcotest.test_case "catalog tasks lint clean" `Quick
            test_clean_catalog;
          Alcotest.test_case "shipped examples lint clean" `Quick
            test_clean_examples ] );
      ( "conflicts",
        [ Alcotest.test_case "filter overlap" `Quick test_filter_overlap;
          Alcotest.test_case "C301 overlapping rules" `Quick
            test_conflict_c301;
          Alcotest.test_case "C302 blinded monitor" `Quick test_conflict_c302;
          Alcotest.test_case "disjoint rules are quiet" `Quick
            test_conflict_disjoint ] );
      ( "seeder",
        [ Alcotest.test_case "refuses livelock" `Quick
            test_seeder_refuses_livelock;
          Alcotest.test_case "records conflicts" `Quick
            test_seeder_conflict_warns;
          Alcotest.test_case "refuse_conflicts blocks deploy" `Quick
            test_seeder_refuses_conflicts ] );
      ( "bounds",
        [ Alcotest.test_case "inferred ceiling vs simulation" `Quick
            test_bounds_vs_simulation ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_machine_roundtrip ] ) ]

(* Tests for the network substrate: addresses, filters, TCAM, topology,
   routing, switch model, fabric and traffic generation. *)

open Farm_net
module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Ipaddr                                                              *)
(* ------------------------------------------------------------------ *)

let test_ip_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Ipaddr.to_string (Ipaddr.of_string s)))
    [ "0.0.0.0"; "10.1.1.4"; "255.255.255.255"; "192.168.0.1" ]

let test_ip_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check (option reject)) s None
        (Option.map ignore (Ipaddr.of_string_opt s)))
    [ ""; "10.1.1"; "10.1.1.256"; "a.b.c.d"; "10.1.1.1.1"; "-1.0.0.0" ]

let test_prefix_mem () =
  let p = Ipaddr.Prefix.of_string "10.0.1.0/24" in
  Alcotest.(check bool) "inside" true
    (Ipaddr.Prefix.mem (Ipaddr.of_string "10.0.1.77") p);
  Alcotest.(check bool) "outside" false
    (Ipaddr.Prefix.mem (Ipaddr.of_string "10.0.2.1") p);
  let all = Ipaddr.Prefix.of_string "0.0.0.0/0" in
  Alcotest.(check bool) "default route matches everything" true
    (Ipaddr.Prefix.mem (Ipaddr.of_string "203.0.113.9") all)

let test_prefix_subset_overlap () =
  let p24 = Ipaddr.Prefix.of_string "10.0.1.0/24" in
  let p16 = Ipaddr.Prefix.of_string "10.0.0.0/16" in
  let q24 = Ipaddr.Prefix.of_string "10.1.0.0/24" in
  Alcotest.(check bool) "24 subset of 16" true (Ipaddr.Prefix.subset p24 p16);
  Alcotest.(check bool) "16 not subset of 24" false
    (Ipaddr.Prefix.subset p16 p24);
  Alcotest.(check bool) "overlap up" true (Ipaddr.Prefix.overlap p24 p16);
  Alcotest.(check bool) "disjoint" false (Ipaddr.Prefix.overlap p24 q24)

let test_prefix_normalizes () =
  let p = Ipaddr.Prefix.make (Ipaddr.of_string "10.0.1.99") 24 in
  Alcotest.(check string) "host bits zeroed" "10.0.1.0/24"
    (Ipaddr.Prefix.to_string p)

let prop_prefix_member_of_own_prefix =
  QCheck2.Test.make ~name:"address is member of its own /len prefix" ~count:200
    QCheck2.Gen.(pair (int_bound 0xFFFFFF) (int_range 0 32))
    (fun (base, len) ->
      let addr = Ipaddr.of_int (base * 97) in
      Ipaddr.Prefix.mem addr (Ipaddr.Prefix.make addr len))

(* ------------------------------------------------------------------ *)
(* Filter                                                              *)
(* ------------------------------------------------------------------ *)

let tup ?(src = "10.1.1.4") ?(dst = "10.0.1.9") ?(sport = 1234) ?(dport = 80)
    ?(proto = Flow.Tcp) () =
  { Flow.src = Ipaddr.of_string src; dst = Ipaddr.of_string dst; sport;
    dport; proto }

let test_filter_atoms () =
  let t = tup () in
  let open Filter in
  Alcotest.(check bool) "src ip" true
    (matches (atom (Src_ip (Ipaddr.Prefix.of_string "10.1.0.0/16"))) t);
  Alcotest.(check bool) "dst ip miss" false
    (matches (atom (Dst_ip (Ipaddr.Prefix.of_string "10.1.0.0/16"))) t);
  Alcotest.(check bool) "dport" true (matches (atom (Dst_port 80)) t);
  Alcotest.(check bool) "port either" true (matches (atom (Port 1234)) t);
  Alcotest.(check bool) "proto" true (matches (atom (Proto Flow.Tcp)) t);
  Alcotest.(check bool) "any" true (matches (atom Any) t)

let test_filter_boolean () =
  let t = tup () in
  let open Filter in
  let f = atom (Dst_port 80) &&& atom (Proto Flow.Tcp) in
  Alcotest.(check bool) "and" true (matches f t);
  Alcotest.(check bool) "and with not" false (matches (f &&& Not f) t);
  Alcotest.(check bool) "or" true (matches (False ||| f) t);
  Alcotest.(check bool) "not" false (matches (Not f) t)

let test_filter_subjects () =
  let open Filter in
  let f =
    atom (Src_ip (Ipaddr.Prefix.of_string "10.1.0.0/16"))
    &&& (atom (Dst_port 80) ||| atom (Proto Flow.Udp))
  in
  let subjects = subjects f in
  Alcotest.(check int) "three subjects" 3 (List.length subjects);
  Alcotest.(check bool) "port subject present" true
    (List.exists (subject_equal (Port_counter 80)) subjects);
  (* duplicates are collapsed *)
  let f2 = atom (Dst_port 80) &&& atom (Src_port 80) in
  Alcotest.(check int) "dedup" 1 (List.length (Filter.subjects f2))

let prop_filter_demorgan =
  let gen_filter =
    let open QCheck2.Gen in
    let atom_gen =
      oneof
        [ return (Filter.atom Filter.Any);
          map (fun p -> Filter.atom (Filter.Dst_port p)) (int_range 1 100);
          map (fun p -> Filter.atom (Filter.Src_port p)) (int_range 1 100);
          return (Filter.atom (Filter.Proto Flow.Tcp)) ]
    in
    let rec go depth =
      if depth = 0 then atom_gen
      else
        oneof
          [ atom_gen;
            map2 (fun a b -> Filter.And (a, b)) (go (depth - 1)) (go (depth - 1));
            map2 (fun a b -> Filter.Or (a, b)) (go (depth - 1)) (go (depth - 1));
            map (fun a -> Filter.Not a) (go (depth - 1)) ]
    in
    go 3
  in
  QCheck2.Test.make ~name:"De Morgan: !(a&&b) == !a || !b" ~count:200
    QCheck2.Gen.(triple gen_filter gen_filter (int_range 1 100))
    (fun (a, b, port) ->
      let t = tup ~dport:port () in
      Filter.matches (Filter.Not (Filter.And (a, b))) t
      = Filter.matches (Filter.Or (Filter.Not a, Filter.Not b)) t)

(* ------------------------------------------------------------------ *)
(* Tcam                                                                *)
(* ------------------------------------------------------------------ *)

let test_tcam_partition () =
  let t = Tcam.create ~monitoring_share:0.25 ~capacity:100 () in
  Alcotest.(check int) "monitoring region" 25
    (Tcam.region_capacity t Tcam.Monitoring);
  Alcotest.(check int) "forwarding region" 75
    (Tcam.region_capacity t Tcam.Forwarding);
  (* fill monitoring region *)
  for i = 1 to 25 do
    match
      Tcam.add t Tcam.Monitoring
        { pattern = Filter.atom (Filter.Dst_port i); action = Tcam.Count;
          priority = 0 }
    with
    | Ok _ -> ()
    | Error `Full -> Alcotest.fail "should fit"
  done;
  (match
     Tcam.add t Tcam.Monitoring
       { pattern = Filter.True; action = Tcam.Count; priority = 0 }
   with
  | Error `Full -> ()
  | Ok _ -> Alcotest.fail "monitoring region must be full");
  (* forwarding region is unaffected: monitoring cannot evict forwarding *)
  (match
     Tcam.add t Tcam.Forwarding
       { pattern = Filter.True; action = Tcam.Forward 1; priority = 0 }
   with
  | Ok _ -> ()
  | Error `Full -> Alcotest.fail "forwarding region must be unaffected")

let test_tcam_priority_lookup () =
  let t = Tcam.create ~capacity:100 () in
  let r1 =
    { Tcam.pattern = Filter.atom (Filter.Dst_port 80); action = Tcam.Drop;
      priority = 10 }
  in
  let r2 = { Tcam.pattern = Filter.True; action = Tcam.Forward 1; priority = 1 } in
  (match Tcam.add t Tcam.Forwarding r2 with Ok _ -> () | Error `Full -> assert false);
  (match Tcam.add t Tcam.Forwarding r1 with Ok _ -> () | Error `Full -> assert false);
  (match Tcam.lookup t (tup ~dport:80 ()) with
  | Some e -> Alcotest.(check bool) "high priority wins" true (e.rule.action = Tcam.Drop)
  | None -> Alcotest.fail "must match");
  match Tcam.lookup t (tup ~dport:443 ()) with
  | Some e ->
      Alcotest.(check bool) "fallback rule" true (e.rule.action = Tcam.Forward 1)
  | None -> Alcotest.fail "must match catch-all"

let test_tcam_counters_and_remove () =
  let t = Tcam.create ~capacity:10 () in
  let pat = Filter.atom (Filter.Dst_port 80) in
  let entry =
    match
      Tcam.add t Tcam.Monitoring { pattern = pat; action = Tcam.Count; priority = 0 }
    with
    | Ok e -> e
    | Error `Full -> assert false
  in
  Tcam.record t (tup ~dport:80 ()) ~bytes:500.;
  Tcam.record t (tup ~dport:443 ()) ~bytes:999.;
  check_float "bytes counted" 500. entry.bytes;
  check_float "one packet" 1. entry.packets;
  Alcotest.(check int) "removed" 1 (Tcam.remove t Tcam.Monitoring ~pattern:pat);
  Alcotest.(check int) "idempotent remove" 0
    (Tcam.remove t Tcam.Monitoring ~pattern:pat);
  Alcotest.(check int) "region empty" 0 (Tcam.region_used t Tcam.Monitoring)

(* ------------------------------------------------------------------ *)
(* Topology & Routing                                                  *)
(* ------------------------------------------------------------------ *)

let test_spine_leaf_shape () =
  let t = Topology.spine_leaf ~spines:2 ~leaves:4 ~hosts_per_leaf:3 in
  Alcotest.(check int) "switch count" 6 (List.length (Topology.switches t));
  Alcotest.(check int) "host count" 12 (List.length (Topology.hosts t));
  (* each leaf has 2 spines + 3 hosts = 5 ports; spine has 4 *)
  let leaf =
    List.find (fun (n : Topology.node) -> n.name = "leaf0") (Topology.nodes t)
  in
  Alcotest.(check int) "leaf degree" 5 (Topology.port_count t leaf.id);
  let spine =
    List.find (fun (n : Topology.node) -> n.name = "spine0") (Topology.nodes t)
  in
  Alcotest.(check int) "spine degree" 4 (Topology.port_count t spine.id)

let test_fat_tree_shape () =
  let t = Topology.fat_tree ~k:4 in
  (* k=4: 4 cores + 8 agg + 8 edge = 20 switches, 16 hosts *)
  Alcotest.(check int) "switches" 20 (List.length (Topology.switches t));
  Alcotest.(check int) "hosts" 16 (List.length (Topology.hosts t))

let test_host_of_addr () =
  let t = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
  match Topology.host_of_addr t (Ipaddr.of_string "10.1.2.7") with
  | Some id ->
      Alcotest.(check string) "right host" "host0_1" (Topology.node t id).name
  | None -> Alcotest.fail "host must be found"

let test_shortest_paths_spine_leaf () =
  let t = Topology.spine_leaf ~spines:3 ~leaves:2 ~hosts_per_leaf:1 in
  let h0 = Option.get (Topology.host_of_addr t (Ipaddr.of_string "10.1.1.1")) in
  let h1 = Option.get (Topology.host_of_addr t (Ipaddr.of_string "10.2.1.1")) in
  let paths = Routing.shortest_paths t ~src:h0 ~dst:h1 in
  (* host - leaf - spine - leaf - host: one path per spine *)
  Alcotest.(check int) "ECMP over 3 spines" 3 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "length 5" 5 (List.length p);
      Alcotest.(check int) "3 switches" 3
        (List.length (Routing.path_switches t p)))
    paths

let test_paths_same_leaf () =
  let t = Topology.spine_leaf ~spines:3 ~leaves:2 ~hosts_per_leaf:2 in
  let h0 = Option.get (Topology.host_of_addr t (Ipaddr.of_string "10.1.1.1")) in
  let h1 = Option.get (Topology.host_of_addr t (Ipaddr.of_string "10.1.2.1")) in
  let paths = Routing.shortest_paths t ~src:h0 ~dst:h1 in
  Alcotest.(check int) "single intra-leaf path" 1 (List.length paths);
  Alcotest.(check int) "one switch" 1
    (List.length (Routing.path_switches t (List.hd paths)))

let test_route_flow_deterministic () =
  let t = Topology.spine_leaf ~spines:4 ~leaves:3 ~hosts_per_leaf:2 in
  let tuple = tup ~src:"10.1.1.5" ~dst:"10.3.2.9" () in
  let p1 = Routing.route_flow t tuple in
  let p2 = Routing.route_flow t tuple in
  Alcotest.(check bool) "route exists" true (p1 <> None);
  Alcotest.(check bool) "ECMP deterministic per tuple" true (p1 = p2)

let test_paths_matching_filter () =
  let t = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
  let f =
    Filter.(
      atom (Src_ip (Ipaddr.Prefix.of_string "10.1.1.0/24"))
      &&& atom (Dst_ip (Ipaddr.Prefix.of_string "10.2.0.0/16")))
  in
  let paths = Routing.paths_matching t f in
  Alcotest.(check bool) "some paths" true (List.length paths > 0);
  (* all paths start at host0_0 (prefix 10.1.1.0/24) *)
  List.iter
    (fun p ->
      let first = List.hd p in
      Alcotest.(check string) "src host" "host0_0" (Topology.node t first).name)
    paths

let test_satisfiable_three_valued () =
  let src = Ipaddr.Prefix.of_string "10.1.1.0/24" in
  let dst = Ipaddr.Prefix.of_string "10.2.1.0/24" in
  let open Filter in
  Alcotest.(check bool) "positive" true
    (Routing.satisfiable (atom (Src_ip (Ipaddr.Prefix.of_string "10.1.0.0/16")))
       ~src ~dst);
  Alcotest.(check bool) "negative" false
    (Routing.satisfiable (atom (Src_ip (Ipaddr.Prefix.of_string "10.9.0.0/16")))
       ~src ~dst);
  (* not (src in 10.9/16) is certainly true here *)
  Alcotest.(check bool) "negation of disjoint" true
    (Routing.satisfiable
       (Not (atom (Src_ip (Ipaddr.Prefix.of_string "10.9.0.0/16"))))
       ~src ~dst);
  (* not (src in 10.1.1/24) is certainly false: src prefix equals it *)
  Alcotest.(check bool) "negation of superset" false
    (Routing.satisfiable (Not (atom (Src_ip src))) ~src ~dst)

(* ------------------------------------------------------------------ *)
(* Switch_model                                                        *)
(* ------------------------------------------------------------------ *)

let test_switch_counters_integrate () =
  let sw = Switch_model.create ~id:0 ~ports:4 () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1 ~tuple:(tup ()) ~rate:1000.
    ~egress:2 ();
  check_float "no bytes yet" 0. (Switch_model.port_bytes sw ~time:0. ~port:2);
  check_float "after 5s" 5000. (Switch_model.port_bytes sw ~time:5. ~port:2);
  Switch_model.remove_flow sw ~time:10. ~flow_id:1;
  check_float "stops accumulating" 10_000.
    (Switch_model.port_bytes sw ~time:20. ~port:2);
  check_float "other port untouched" 0.
    (Switch_model.port_bytes sw ~time:20. ~port:1)

let test_switch_subject_counters () =
  let sw = Switch_model.create ~id:0 ~ports:4 () in
  let subj = Filter.Port_counter 80 in
  Switch_model.watch_subject sw ~time:0. subj;
  Switch_model.add_flow sw ~time:0. ~flow_id:1 ~tuple:(tup ~dport:80 ())
    ~rate:100. ~egress:0 ();
  Switch_model.add_flow sw ~time:0. ~flow_id:2 ~tuple:(tup ~dport:443 ())
    ~rate:900. ~egress:0 ();
  check_float "only port-80 flow counted" 200.
    (Switch_model.subject_bytes sw ~time:2. subj);
  (* watching after flows exist picks up current rates *)
  let subj2 = Filter.Proto_counter Flow.Tcp in
  Switch_model.watch_subject sw ~time:2. subj2;
  check_float "late watch starts from zero" 0.
    (Switch_model.subject_bytes sw ~time:2. subj2);
  check_float "late watch accumulates both flows" 1000.
    (Switch_model.subject_bytes sw ~time:3. subj2)

let test_switch_tcam_reaction () =
  let sw = Switch_model.create ~id:0 ~ports:4 () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1 ~tuple:(tup ~dport:80 ())
    ~rate:1000. ~egress:1 ();
  (* install a drop rule (a seed's local reaction) and apply it *)
  (match
     Tcam.add (Switch_model.tcam sw) Tcam.Monitoring
       { pattern = Filter.atom (Filter.Dst_port 80); action = Tcam.Drop;
         priority = 5 }
   with
  | Ok _ -> ()
  | Error `Full -> assert false);
  Switch_model.apply_tcam_actions sw ~time:10.;
  check_float "pre-drop bytes" 10_000.
    (Switch_model.port_bytes sw ~time:10. ~port:1);
  check_float "flow quenched" 10_000.
    (Switch_model.port_bytes sw ~time:20. ~port:1);
  (* rate-limit instead of drop *)
  ignore (Tcam.remove (Switch_model.tcam sw) Tcam.Monitoring
            ~pattern:(Filter.atom (Filter.Dst_port 80)));
  (match
     Tcam.add (Switch_model.tcam sw) Tcam.Monitoring
       { pattern = Filter.atom (Filter.Dst_port 80);
         action = Tcam.Rate_limit 100.; priority = 5 }
   with
  | Ok _ -> ()
  | Error `Full -> assert false);
  Switch_model.apply_tcam_actions sw ~time:20.;
  check_float "rate limited" 11_000.
    (Switch_model.port_bytes sw ~time:30. ~port:1)

let test_switch_sampling () =
  let sw = Switch_model.create ~id:0 ~ports:2 () in
  let rng = Rng.create 17 in
  Alcotest.(check (option reject)) "idle switch yields nothing" None
    (Option.map ignore (Switch_model.sample_packet sw rng));
  Switch_model.add_flow sw ~time:0. ~flow_id:1 ~tuple:(tup ~dport:80 ())
    ~rate:9000. ~egress:0 ();
  Switch_model.add_flow sw ~time:0. ~flow_id:2 ~tuple:(tup ~dport:443 ())
    ~rate:1000. ~egress:0 ();
  let hits80 = ref 0 and total = 1000 in
  for _ = 1 to total do
    match Switch_model.sample_packet sw rng with
    | Some p -> if p.tuple.dport = 80 then incr hits80
    | None -> Alcotest.fail "busy switch must sample"
  done;
  (* 90% of rate belongs to the port-80 flow *)
  Alcotest.(check bool) "samples weighted by rate" true
    (!hits80 > 800 && !hits80 < 980)

(* ------------------------------------------------------------------ *)
(* Fabric & Traffic                                                    *)
(* ------------------------------------------------------------------ *)

let test_fabric_flow_accounting () =
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let tuple = tup ~src:"10.1.1.5" ~dst:"10.2.1.5" () in
  let id =
    Option.get (Fabric.start_flow fabric ~time:0. ~tuple ~rate:1000. ())
  in
  let path = Option.get (Fabric.flow_path fabric id) in
  let sws = Routing.path_switches topo path in
  Alcotest.(check int) "leaf-spine-leaf" 3 (List.length sws);
  (* every switch on the path accumulates the flow's bytes *)
  List.iter
    (fun sw ->
      let m = Fabric.switch fabric sw in
      let total =
        List.fold_left
          (fun acc p -> acc +. Switch_model.port_bytes m ~time:4. ~port:p)
          0.
          (List.init (Switch_model.port_count m) Fun.id)
      in
      check_float "bytes on path switch" 4000. total)
    sws;
  Fabric.stop_flow fabric ~time:4. id;
  Alcotest.(check int) "no active flows" 0 (Fabric.active_flow_count fabric)

let test_traffic_background_sustains () =
  let topo = Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
  let fabric = Fabric.create topo in
  let engine = Engine.create ~seed:7 () in
  let rng = Rng.split (Engine.rng engine) in
  let profile =
    { Traffic.concurrent_flows = 50; mean_rate = 10_000.; zipf_s = 1.;
      mean_lifetime = 5. }
  in
  Traffic.background engine fabric rng profile;
  Engine.run ~until:20. engine;
  let n = Fabric.active_flow_count fabric in
  Alcotest.(check bool) "roughly target concurrency" true (n >= 40 && n <= 60)

let test_traffic_heavy_hitter () =
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let engine = Engine.create () in
  let rng = Rng.split (Engine.rng engine) in
  let hh = Traffic.heavy_hitter engine fabric rng ~at:5. ~rate:1e6 () in
  Engine.run ~until:4. engine;
  Alcotest.(check bool) "not yet started" true (!hh = None);
  Engine.run ~until:6. engine;
  Alcotest.(check bool) "started" true (!hh <> None)

let test_traffic_syn_flood_flags () =
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
  let fabric = Fabric.create topo in
  let engine = Engine.create () in
  let rng = Rng.split (Engine.rng engine) in
  let victim = Ipaddr.of_string "10.2.1.7" in
  Traffic.syn_flood engine fabric rng ~at:1. ~duration:10. ~victim
    ~rate_per_source:5000. ~sources:20;
  Engine.run ~until:2. engine;
  (* victim's leaf switch sees SYN packets towards the victim *)
  let leaf =
    List.find (fun (n : Topology.node) -> n.name = "leaf1")
      (Topology.nodes topo)
  in
  let sw = Fabric.switch fabric leaf.id in
  let saw_syn = ref false in
  for _ = 1 to 100 do
    match Switch_model.sample_packet sw rng with
    | Some p when p.flags.syn && Ipaddr.equal p.tuple.dst victim ->
        saw_syn := true
    | Some _ | None -> ()
  done;
  Alcotest.(check bool) "syn packets observed" true !saw_syn;
  Engine.run ~until:12. engine;
  Alcotest.(check int) "attack flows gone" 0 (Fabric.active_flow_count fabric)

(* ------------------------------------------------------------------ *)
(* Property tests: round-trips, model-based TCAM, ECMP validity        *)
(* ------------------------------------------------------------------ *)

let prop_ip_roundtrip =
  QCheck2.Test.make ~name:"ipaddr int/string round-trip" ~count:500
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (hi, lo) ->
      let n = (hi lsl 16) lor lo in
      let a = Ipaddr.of_int n in
      Ipaddr.to_int a = n
      && Ipaddr.equal a (Ipaddr.of_string (Ipaddr.to_string a)))

let prop_prefix_roundtrip =
  QCheck2.Test.make ~name:"prefix print/parse round-trip" ~count:500
    QCheck2.Gen.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_range 0 32))
    (fun (hi, lo, len) ->
      let p = Ipaddr.Prefix.make (Ipaddr.of_int ((hi lsl 16) lor lo)) len in
      Ipaddr.Prefix.equal p
        (Ipaddr.Prefix.of_string (Ipaddr.Prefix.to_string p)))

(* TCAM model test: rules live in a flat association list and lookup is a
   naive scan.  Prefix rules get priority = prefix length, so the test also
   exercises longest-prefix-match-by-priority, the way seeds install
   drill-down rules. *)

let gen_tcam_rule =
  let open QCheck2.Gen in
  let* region =
    map (fun b -> if b then Tcam.Forwarding else Tcam.Monitoring) bool
  in
  let* pattern, priority =
    oneof
      [
        (let* len = int_range 8 32 in
         let* b = int_bound 0xFF in
         let pfx = Ipaddr.Prefix.make (Ipaddr.of_int ((10 lsl 24) lor b)) len in
         return (Filter.atom (Filter.Dst_ip pfx), len));
        (let* p = int_range 1 5 in
         let* prio = int_range 0 40 in
         return (Filter.atom (Filter.Dst_port p), prio));
        (let* p = int_range 1 5 in
         let* prio = int_range 0 40 in
         return (Filter.atom (Filter.Src_port p), prio));
        (let* prio = int_range 0 40 in
         return (Filter.atom (Filter.Proto Flow.Tcp), prio));
        (let* prio = int_range 0 40 in
         return (Filter.True, prio));
      ]
  in
  return (region, { Tcam.pattern; action = Tcam.Count; priority })

let gen_tcam_tuple =
  let open QCheck2.Gen in
  let* s = int_bound 0xFF in
  let* d = int_bound 0xFF in
  let* sport = int_range 1 5 in
  let* dport = int_range 1 5 in
  let* proto = map (fun b -> if b then Flow.Tcp else Flow.Udp) bool in
  return
    {
      Flow.src = Ipaddr.of_int ((10 lsl 24) lor s);
      dst = Ipaddr.of_int ((10 lsl 24) lor d);
      sport;
      dport;
      proto;
    }

(* Mirrors the documented semantics: within a region highest priority wins,
   insertion order breaks ties (both the TCAM's insert_sorted and this
   stable_sort preserve it); across regions forwarding wins unless a
   monitoring rule has strictly higher priority. *)
let tcam_oracle model tuple =
  let best region =
    List.filter
      (fun (r, _, (rule : Tcam.rule)) ->
        r = region && Filter.matches rule.pattern tuple)
      model
    |> List.stable_sort (fun (_, _, (a : Tcam.rule)) (_, _, (b : Tcam.rule)) ->
           Int.compare b.priority a.priority)
    |> function
    | [] -> None
    | x :: _ -> Some x
  in
  match (best Tcam.Forwarding, best Tcam.Monitoring) with
  | None, None -> None
  | Some (_, id, _), None | None, Some (_, id, _) -> Some id
  | Some (_, fid, (fr : Tcam.rule)), Some (_, mid, (mr : Tcam.rule)) ->
      if mr.priority > fr.priority then Some mid else Some fid

let prop_tcam_vs_oracle =
  QCheck2.Test.make ~name:"tcam lookup matches list-scan oracle" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) gen_tcam_rule)
        (list_size (int_range 1 12) gen_tcam_tuple))
    (fun (rules, tuples) ->
      (* capacity below the rule count so the [Error `Full] path (rule
         silently absent from both tcam and model) is exercised too *)
      let t = Tcam.create ~monitoring_share:0.5 ~capacity:20 () in
      let model =
        List.filter_map
          (fun (region, rule) ->
            match Tcam.add t region rule with
            | Ok inst -> Some (region, inst.Tcam.id, rule)
            | Error `Full -> None)
          rules
      in
      List.for_all
        (fun tuple ->
          Option.map (fun (i : Tcam.installed) -> i.id) (Tcam.lookup t tuple)
          = tcam_oracle model tuple)
        tuples)

let prop_ecmp_paths_valid =
  QCheck2.Test.make
    ~name:"ECMP paths: endpoints, loop-free, minimal, live links" ~count:150
    QCheck2.Gen.(
      let* spines = int_range 2 3 in
      let* leaves = int_range 2 4 in
      let* pick = int_bound 10_000 in
      let* cut = int_bound 10_000 in
      return (spines, leaves, pick, cut))
    (fun (spines, leaves, pick, cut) ->
      let topo = Topology.spine_leaf ~spines ~leaves ~hosts_per_leaf:2 in
      let hosts = Array.of_list (Topology.hosts topo) in
      let n = Array.length hosts in
      let si = pick mod n in
      let di = (pick / n) mod n in
      let di = if di = si then (di + 1) mod n else di in
      let src = hosts.(si).Topology.id and dst = hosts.(di).Topology.id in
      let valid () =
        match Routing.shortest_paths topo ~src ~dst with
        | [] -> false
        | paths ->
            let min_len =
              List.fold_left (fun acc p -> min acc (List.length p)) max_int
                paths
            in
            List.for_all
              (fun p ->
                List.length p = min_len
                && List.hd p = src
                && List.nth p (List.length p - 1) = dst
                && List.length (List.sort_uniq Int.compare p) = List.length p
                &&
                let rec live = function
                  | a :: (b :: _ as rest) ->
                      Topology.link_is_up topo a b && live rest
                  | _ -> true
                in
                live p)
              paths
      in
      let ok_before = valid () in
      (* cut one leaf-spine link: with >= 2 spines the fabric stays
         connected and surviving paths must route around it *)
      let sw_links = Array.of_list (Topology.switch_links topo) in
      let a, b = sw_links.(cut mod Array.length sw_links) in
      Topology.set_link_state topo a b ~up:false;
      ok_before && valid ())

let test_fabric_link_failover () =
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let tuple = tup ~src:"10.1.1.5" ~dst:"10.2.1.5" () in
  let id =
    Option.get (Fabric.start_flow fabric ~time:0. ~tuple ~rate:1000. ())
  in
  let path0 = Option.get (Fabric.flow_path fabric id) in
  (* host - leaf - spine - leaf - host *)
  let leaf = List.nth path0 1 and spine = List.nth path0 2 in
  Fabric.set_link_state fabric ~time:1. leaf spine ~up:false;
  let path1 = Option.get (Fabric.flow_path fabric id) in
  Alcotest.(check bool) "moved off the dead link" true (path1 <> path0);
  let rec uses = function
    | a :: (b :: _ as rest) ->
        (a = leaf && b = spine) || (a = spine && b = leaf) || uses rest
    | _ -> false
  in
  Alcotest.(check bool) "new path avoids dead link" false (uses path1);
  Alcotest.(check int) "reroute counted" 1 (Fabric.rerouted_flows fabric);
  Fabric.set_link_state fabric ~time:2. leaf spine ~up:true;
  let path2 = Option.get (Fabric.flow_path fabric id) in
  Alcotest.(check (list int)) "repair restores the ECMP choice" path0 path2;
  (* cut every uplink of the source leaf: no route is left so the flow is
     torn down rather than silently black-holed *)
  let uplinks =
    List.filter (fun s -> Topology.is_switch topo s)
      (Topology.neighbors topo leaf)
  in
  List.iter
    (fun s -> Fabric.set_link_state fabric ~time:3. leaf s ~up:false)
    uplinks;
  Alcotest.(check int) "flow dropped" 0 (Fabric.active_flow_count fabric);
  Alcotest.(check int) "drop counted" 1 (Fabric.dropped_flows fabric)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "farm_net"
    [ ( "ipaddr",
        [ Alcotest.test_case "roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ip_invalid;
          Alcotest.test_case "prefix mem" `Quick test_prefix_mem;
          Alcotest.test_case "subset/overlap" `Quick
            test_prefix_subset_overlap;
          Alcotest.test_case "normalizes" `Quick test_prefix_normalizes ]
        @ qsuite
            [ prop_prefix_member_of_own_prefix; prop_ip_roundtrip;
              prop_prefix_roundtrip ] );
      ( "filter",
        [ Alcotest.test_case "atoms" `Quick test_filter_atoms;
          Alcotest.test_case "boolean" `Quick test_filter_boolean;
          Alcotest.test_case "subjects" `Quick test_filter_subjects ]
        @ qsuite [ prop_filter_demorgan ] );
      ( "tcam",
        [ Alcotest.test_case "partition" `Quick test_tcam_partition;
          Alcotest.test_case "priority lookup" `Quick
            test_tcam_priority_lookup;
          Alcotest.test_case "counters and remove" `Quick
            test_tcam_counters_and_remove ]
        @ qsuite [ prop_tcam_vs_oracle ] );
      ( "topology",
        [ Alcotest.test_case "spine-leaf shape" `Quick test_spine_leaf_shape;
          Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
          Alcotest.test_case "host_of_addr" `Quick test_host_of_addr ] );
      ( "routing",
        [ Alcotest.test_case "ECMP spine-leaf" `Quick
            test_shortest_paths_spine_leaf;
          Alcotest.test_case "same leaf" `Quick test_paths_same_leaf;
          Alcotest.test_case "route deterministic" `Quick
            test_route_flow_deterministic;
          Alcotest.test_case "paths matching filter" `Quick
            test_paths_matching_filter;
          Alcotest.test_case "three-valued satisfiability" `Quick
            test_satisfiable_three_valued ]
        @ qsuite [ prop_ecmp_paths_valid ] );
      ( "switch_model",
        [ Alcotest.test_case "counters integrate" `Quick
            test_switch_counters_integrate;
          Alcotest.test_case "subject counters" `Quick
            test_switch_subject_counters;
          Alcotest.test_case "tcam reaction" `Quick test_switch_tcam_reaction;
          Alcotest.test_case "sampling" `Quick test_switch_sampling ] );
      ( "fabric",
        [ Alcotest.test_case "flow accounting" `Quick
            test_fabric_flow_accounting;
          Alcotest.test_case "link failover" `Quick test_fabric_link_failover ] );
      ( "traffic",
        [ Alcotest.test_case "background sustains" `Quick
            test_traffic_background_sustains;
          Alcotest.test_case "heavy hitter" `Quick test_traffic_heavy_hitter;
          Alcotest.test_case "syn flood flags" `Quick
            test_traffic_syn_flood_flags ] ) ]

(* Tests for the FARM runtime: CPU/IPC models, soil (aggregation, PCIe
   bottleneck, TCAM mediation), seed execution and the seeder's end-to-end
   deploy -> poll -> detect -> react -> harvest pipeline, plus migration. *)

open Farm_runtime
module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Filter = Farm_net.Filter
module Flow = Farm_net.Flow
module Tcam = Farm_net.Tcam
module Switch_model = Farm_net.Switch_model
module Value = Farm_almanac.Value
module Typecheck = Farm_almanac.Typecheck

(* ------------------------------------------------------------------ *)
(* Cpu_model / Ipc                                                     *)
(* ------------------------------------------------------------------ *)

let test_cpu_model_accounting () =
  let u = Cpu_model.usage () in
  Cpu_model.charge u 2.;
  Cpu_model.charge u 6.;
  Alcotest.(check (float 1e-9)) "busy" 8. (Cpu_model.busy_seconds u);
  Alcotest.(check (float 1e-9)) "offered load 800%" 8.
    (Cpu_model.offered_load u ~window:1.);
  let m = Cpu_model.default in
  Alcotest.(check (float 1e-9)) "achieved capped at cores" m.cores
    (Cpu_model.achieved_load m u ~window:1.);
  Alcotest.(check (float 1e-9)) "accuracy = cores/offered" (m.cores /. 8.)
    (Cpu_model.accuracy m u ~window:1.);
  Cpu_model.charge u (-7.9);
  ignore (Cpu_model.accuracy m u ~window:1.)

let test_ipc_latency_shape () =
  (* gRPC grows fast with seed count; shared buffer stays nearly flat
     (Fig. 10) *)
  let g10 = Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:10 in
  let g150 = Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:150 in
  let s10 = Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:10 in
  let s150 = Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:150 in
  Alcotest.(check bool) "gRPC grows" true (g150 > g10 *. 2.);
  Alcotest.(check bool) "shared buffer nearly flat" true
    (s150 < s10 *. 3.);
  Alcotest.(check bool) "shared buffer much faster" true (s150 *. 20. < g150);
  (* processes cost more than threads on both schemes *)
  Alcotest.(check bool) "processes slower (gRPC)" true
    (Ipc.latency Ipc.Grpc Ipc.Processes ~seeds:50
    > Ipc.latency Ipc.Grpc Ipc.Threads ~seeds:50);
  Alcotest.(check bool) "processes slower (shm)" true
    (Ipc.latency Ipc.Shared_buffer Ipc.Processes ~seeds:50
    > Ipc.latency Ipc.Shared_buffer Ipc.Threads ~seeds:50)

(* ------------------------------------------------------------------ *)
(* Soil                                                                *)
(* ------------------------------------------------------------------ *)

let make_soil ?config () =
  let engine = Engine.create () in
  let sw = Switch_model.create ~id:0 ~ports:8 () in
  let soil = Soil.create ?config engine sw in
  (engine, sw, soil)

let test_soil_poll_delivery () =
  let engine, sw, soil = make_soil () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1
    ~tuple:{ Flow.src = Farm_net.Ipaddr.of_int 1;
             dst = Farm_net.Ipaddr.of_int 2; sport = 1; dport = 80;
             proto = Flow.Tcp }
    ~rate:1000. ~egress:3 ();
  let deliveries = ref [] in
  let _sub =
    Soil.subscribe_poll soil ~seed_id:0 ~subject:Filter.All_ports ~period:0.1
      (fun data -> deliveries := data :: !deliveries)
  in
  Engine.run ~until:1.05 engine;
  Alcotest.(check bool) "about 10 deliveries" true
    (List.length !deliveries >= 9 && List.length !deliveries <= 11);
  (* latest delivery sees accumulated bytes on port 3 *)
  (match !deliveries with
  | last :: _ ->
      Alcotest.(check bool) "port 3 counted" true (last.(3) > 800.)
  | [] -> Alcotest.fail "no deliveries")

let test_soil_aggregation_saves_asic_polls () =
  (* two seeds polling the same subject: aggregated = one ASIC poll stream
     at the fastest rate *)
  let run aggregate =
    let config = { Soil.default_config with aggregate_polls = aggregate } in
    let engine, _sw, soil = make_soil ~config () in
    let _s1 =
      Soil.subscribe_poll soil ~seed_id:1 ~subject:Filter.All_ports
        ~period:0.01 (fun _ -> ())
    in
    let _s2 =
      Soil.subscribe_poll soil ~seed_id:2 ~subject:Filter.All_ports
        ~period:0.01 (fun _ -> ())
    in
    Engine.run ~until:1. engine;
    (Soil.poll_stats soil).asic_polls
  in
  let agg = run true and non_agg = run false in
  Alcotest.(check bool)
    (Printf.sprintf "aggregation halves ASIC polls (%d vs %d)" agg non_agg)
    true
    (float_of_int agg < 0.6 *. float_of_int non_agg)

let test_soil_aggregated_rate_is_fastest () =
  let engine, _sw, soil = make_soil () in
  let fast = ref 0 and slow = ref 0 in
  let _s1 =
    Soil.subscribe_poll soil ~seed_id:1 ~subject:Filter.All_ports
      ~period:0.01 (fun _ -> incr fast)
  in
  let _s2 =
    Soil.subscribe_poll soil ~seed_id:2 ~subject:Filter.All_ports
      ~period:0.1 (fun _ -> incr slow)
  in
  Engine.run ~until:1. engine;
  (* both are served at the fast seed's rate: the slow seed sees at least
     its requested accuracy *)
  Alcotest.(check bool) "fast seed ~100 polls" true (!fast >= 95);
  Alcotest.(check bool) "slow seed served at aggregate rate" true
    (!slow >= 95)

let test_soil_pcie_saturation () =
  (* Demand far beyond the 8 Mbit/s polling budget: polls are dropped and
     completions cap at the bus capacity (Fig. 8). *)
  let engine, _sw, soil = make_soil () in
  (* a 64 B counter read is 512 bits; the 8 Mbit/s budget sustains
     ~15625 polls/s.  Ask for 20 seeds x 5000 polls/s = 51 Mbit/s. *)
  for i = 1 to 20 do
    ignore
      (Soil.subscribe_poll soil ~seed_id:i
         ~subject:(Filter.Port_counter i) ~period:0.0002 (fun _ -> ()))
  done;
  Engine.run ~until:2. engine;
  let stats = Soil.poll_stats soil in
  Alcotest.(check bool) "drops occurred" true (stats.dropped > 0);
  (* completed transfer volume stays within bus capacity *)
  let achieved_bps = stats.pcie_bytes *. 8. /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.0f <= capacity" achieved_bps)
    true
    (achieved_bps <= 8.1e6)

let test_soil_probe_sampling () =
  let engine, sw, soil = make_soil () in
  Switch_model.add_flow sw ~time:0. ~flow_id:1
    ~tuple:{ Flow.src = Farm_net.Ipaddr.of_int 1;
             dst = Farm_net.Ipaddr.of_int 2; sport = 5; dport = 443;
             proto = Flow.Tcp }
    ~rate:1e6 ~egress:0 ();
  let got = ref 0 in
  let _sub =
    Soil.subscribe_probe soil ~seed_id:0
      ~filter:(Filter.atom (Filter.Dst_port 443)) ~period:0.01 (fun pkt ->
        Alcotest.(check int) "filtered packets only" 443 pkt.tuple.dport;
        incr got)
  in
  Engine.run ~until:1. engine;
  Alcotest.(check bool) "packets sampled" true (!got > 50)

let test_soil_tcam_mediation () =
  let engine, sw, soil = make_soil () in
  ignore engine;
  let pattern = Filter.atom (Filter.Dst_port 80) in
  (match Soil.add_tcam_rule soil { pattern; action = Tcam.Drop; priority = 5 } with
  | Ok () -> ()
  | Error `Full -> Alcotest.fail "rule must fit");
  (* rule landed in the monitoring region only *)
  Alcotest.(check int) "monitoring region used" 1
    (Tcam.region_used (Switch_model.tcam sw) Tcam.Monitoring);
  Alcotest.(check int) "forwarding region untouched" 0
    (Tcam.region_used (Switch_model.tcam sw) Tcam.Forwarding);
  Alcotest.(check bool) "lookup finds it" true
    (Soil.get_tcam_rule soil ~pattern <> None);
  Alcotest.(check int) "removed" 1 (Soil.remove_tcam_rule soil ~pattern)

(* ------------------------------------------------------------------ *)
(* End-to-end deployment                                               *)
(* ------------------------------------------------------------------ *)

(* A watchdog task: polls all port counters; when the total byte count
   exceeds [limit] it reports to the harvester, installs a local drop rule
   for port 80, and moves to a quenched state. *)
let watchdog_source =
  {|
machine Watchdog {
  place all;
  poll counters = Poll { .ival = 0.01, .what = port ANY };
  external long limit = 1000000;
  state observe {
    when (counters as stats) do {
      if (stats_sum(stats) >= limit) then {
        transit alerting;
      }
    }
  }
  state alerting {
    when (enter) do {
      send stats_to_report() to harvester;
      addTCAMRule(mkRule(dstPort 80, drop_action()));
      transit quenched;
    }
  }
  state quenched {
  }
}
|}

let watchdog_sigs =
  [ ("stats_to_report", { Typecheck.args = []; ret = Typecheck.Numeric }) ]

let watchdog_builtins = [ ("stats_to_report", fun _ -> Value.Num 42.) ]

let make_world () =
  let engine = Engine.create ~seed:11 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  (engine, topo, fabric, seeder)

let test_seeder_deploy_and_detect () =
  let engine, topo, fabric, seeder = make_world () in
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins;
      ts_externals = [ ("Watchdog", [ ("limit", Value.Num 50_000.) ]) ] }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Alcotest.(check bool) "placed" true (Seeder.is_placed task);
  (* place all: one seed per switch *)
  Alcotest.(check int) "one seed per switch"
    (List.length (Topology.switches topo))
    (List.length (Seeder.seeds seeder task));
  (* a 100 kB/s flow crosses the 50 kB total within ~0.5 s on its path *)
  let tuple =
    { Flow.src = Farm_net.Ipaddr.of_string "10.1.1.10";
      dst = Farm_net.Ipaddr.of_string "10.2.1.10"; sport = 1234; dport = 80;
      proto = Flow.Tcp }
  in
  let _ = Fabric.start_flow fabric ~time:0. ~tuple ~rate:100_000. () in
  Engine.run ~until:2. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "harvester got alerts" true
    (Harvester.received_count h >= 1);
  (* alert payload comes from the task builtin *)
  (match Harvester.received h with
  | (_, _, Value.Num v) :: _ -> Alcotest.(check (float 0.)) "payload" 42. v
  | _ -> Alcotest.fail "expected a numeric alert");
  (* local reaction: drop rule installed on the path switches *)
  let rule_somewhere =
    List.exists
      (fun soil ->
        Soil.get_tcam_rule soil ~pattern:(Filter.atom (Filter.Dst_port 80))
        <> None)
      (Seeder.soils seeder)
  in
  Alcotest.(check bool) "drop rule installed locally" true rule_somewhere;
  (* seeds on the flow's path are quenched *)
  let quenched =
    List.filter (fun s -> Seed_exec.state s = "quenched")
      (Seeder.seeds seeder task)
  in
  Alcotest.(check bool) "path seeds quenched" true (List.length quenched >= 3)

let test_seeder_harvester_feedback () =
  (* the harvester reconfigures seeds at runtime via recv *)
  let source =
    {|
machine Adj {
  place all;
  external long threshold = 10;
  state s {
    when (recv long t from harvester) do { threshold = t; }
  }
}
|}
  in
  let engine, _, _, seeder = make_world () in
  let sent = ref false in
  let harvester_spec =
    { Harvester.on_start =
        (fun ctx ->
          sent := true;
          ctx.broadcast (Value.Num 77.));
      on_message = (fun _ ~from_switch:_ _ -> ()) }
  in
  let spec =
    { (Seeder.simple_spec ~name:"adj" ~source) with
      Seeder.ts_harvester = harvester_spec }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:0.1 engine;
  Alcotest.(check bool) "harvester started" true !sent;
  List.iter
    (fun s ->
      match Seed_exec.var s "threshold" with
      | Some (Value.Num v) ->
          Alcotest.(check (float 0.)) "threshold pushed to all seeds" 77. v
      | _ -> Alcotest.fail "threshold unbound")
    (Seeder.seeds seeder task)

let test_seeder_collector_accounting () =
  let engine, _, fabric, seeder = make_world () in
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins;
      ts_externals = [ ("Watchdog", [ ("limit", Value.Num 10_000.) ]) ] }
  in
  (match Seeder.deploy seeder spec with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "deploy failed: %s" m);
  Alcotest.(check (float 0.)) "no traffic, no collector load" 0.
    (Seeder.collector_bytes seeder);
  let tuple =
    { Flow.src = Farm_net.Ipaddr.of_string "10.1.1.10";
      dst = Farm_net.Ipaddr.of_string "10.2.1.10"; sport = 1; dport = 80;
      proto = Flow.Tcp }
  in
  let _ = Fabric.start_flow fabric ~time:0. ~tuple ~rate:1e6 () in
  Engine.run ~until:1. engine;
  Alcotest.(check bool) "alerts counted" true
    (Seeder.collector_messages seeder >= 1);
  Alcotest.(check bool) "bytes counted" true
    (Seeder.collector_bytes seeder > 0.)

let test_seeder_undeploy_releases () =
  let engine, _, _, seeder = make_world () in
  ignore engine;
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  let n_seeds = List.length (Seeder.seeds seeder task) in
  Alcotest.(check bool) "seeds deployed" true (n_seeds > 0);
  Seeder.undeploy seeder task;
  Alcotest.(check int) "seeds gone" 0 (List.length (Seeder.seeds seeder task));
  Alcotest.(check bool) "not placed" false (Seeder.is_placed task)

let test_seeder_rejects_bad_programs () =
  let _, _, _, seeder = make_world () in
  (match Seeder.deploy seeder (Seeder.simple_spec ~name:"bad" ~source:"machine {") with
  | Error m ->
      Alcotest.(check bool) "syntax error surfaced" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "syntax error must fail");
  match
    Seeder.deploy seeder
      (Seeder.simple_spec ~name:"bad2"
         ~source:
           "machine M { long x; state s { when (enter) do { x = nope; } } }")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error must fail"

(* A program whose assert admits a feasible violating path: deployable
   by default, refused under [verify_on_deploy]. *)
let brittle_source =
  {|
machine Brittle {
  place all;
  poll counters = Poll { .ival = 0.01, .what = port ANY };
  state observe {
    when (counters as stats) do {
      assert(stats_sum(stats) < 10);
    }
  }
}
|}

let test_seeder_verify_on_deploy () =
  (* default config: the symbolic pass does not run, deploy succeeds *)
  let _, _, _, seeder = make_world () in
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"brittle" ~source:brittle_source)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "unverified deploy refused: %s" m);
  (* verify_on_deploy: the V403 feasible assert violation refuses it *)
  let engine = Engine.create ~seed:11 () in
  let fabric =
    Fabric.create (Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1)
  in
  let seeder =
    Seeder.create
      ~config:{ Seeder.default_config with verify_on_deploy = true }
      engine fabric
  in
  (match
     Seeder.deploy seeder
       (Seeder.simple_spec ~name:"brittle" ~source:brittle_source)
   with
  | Error m ->
      Alcotest.(check bool) "refusal names the verify pass" true
        (String.length m >= 7 && String.sub m 0 7 = "verify:")
  | Ok _ -> Alcotest.fail "verify_on_deploy must refuse a failing assert");
  (* a sound program still deploys under the gate *)
  let spec =
    { (Seeder.simple_spec ~name:"watchdog" ~source:watchdog_source) with
      Seeder.ts_extra_sigs = watchdog_sigs;
      ts_builtins = watchdog_builtins;
      ts_externals = [ ("Watchdog", [ ("limit", Value.Num 50_000.) ]) ] }
  in
  match Seeder.deploy seeder spec with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "verified deploy refused: %s" m

let test_seed_migration_preserves_state () =
  (* Manual migration through the Seed_exec API: snapshot on one soil,
     restore on another; machine state and variables survive, polling
     resumes on the target. *)
  let engine = Engine.create () in
  let sw0 = Switch_model.create ~id:0 ~ports:4 () in
  let sw1 = Switch_model.create ~id:1 ~ports:4 () in
  let soil0 = Soil.create engine sw0 in
  let soil1 = Soil.create engine sw1 in
  let source =
    {|
machine Counting {
  place all;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long count = 0;
  state s {
    when (ticks as stats) do { count = count + 1; }
  }
}
|}
  in
  let program = Typecheck.check (Farm_almanac.Parser.program source) in
  let machine = List.hd program.machines in
  let polls =
    match Farm_almanac.Analysis.polls machine with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let resources = Array.make Farm_almanac.Analysis.n_resources 1. in
  let deploy soil restore =
    Seed_exec.deploy ~soil ~program ~machine:"Counting" ?restore ~resources
      ~polls
      ~send:(fun _ _ _ -> ())
      ~seed_id:7 ()
  in
  let s0 = deploy soil0 None in
  Engine.run ~until:0.5 engine;
  let count_at_migration =
    match Seed_exec.var s0 "count" with
    | Some (Value.Num n) -> n
    | _ -> Alcotest.fail "count unbound"
  in
  Alcotest.(check bool) "polled before migration" true
    (count_at_migration > 10.);
  let snapshot = Seed_exec.snapshot s0 in
  Seed_exec.destroy s0;
  Alcotest.(check bool) "origin stopped" false (Seed_exec.is_alive s0);
  let s1 = deploy soil1 (Some snapshot) in
  Alcotest.(check int) "runs on target switch" 1 (Seed_exec.node s1);
  Engine.run ~until:1. engine;
  (match Seed_exec.var s1 "count" with
  | Some (Value.Num n) ->
      Alcotest.(check bool) "state carried over and polling resumed" true
        (n > count_at_migration +. 10.)
  | _ -> Alcotest.fail "count unbound after migration");
  (* origin soil no longer polls *)
  Soil.reset_stats soil0;
  Engine.run ~until:1.5 engine;
  Alcotest.(check int) "origin soil idle" 0 (Soil.poll_stats soil0).asic_polls

let test_seed_realloc_changes_poll_rate () =
  (* a seed whose ival = 10/PCIe polls faster after more PCIe is granted *)
  let engine = Engine.create () in
  let sw = Switch_model.create ~id:0 ~ports:4 () in
  let soil = Soil.create engine sw in
  let source =
    {|
machine R {
  place all;
  poll ticks = Poll { .ival = 10 / res().PCIe, .what = port ANY };
  long count = 0;
  long reallocs = 0;
  state s {
    when (ticks as stats) do { count = count + 1; }
    when (realloc) do { reallocs = reallocs + 1; }
  }
}
|}
  in
  let program = Typecheck.check (Farm_almanac.Parser.program source) in
  let polls =
    match Farm_almanac.Analysis.polls (List.hd program.machines) with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let res = Array.make Farm_almanac.Analysis.n_resources 1. in
  res.(Farm_almanac.Analysis.resource_index Farm_almanac.Analysis.Pcie) <- 100.;
  (* ival = 10/100 = 0.1 s *)
  let seed =
    Seed_exec.deploy ~soil ~program ~machine:"R" ~resources:res ~polls
      ~send:(fun _ _ _ -> ())
      ~seed_id:1 ()
  in
  Engine.run ~until:1. engine;
  let c1 =
    match Seed_exec.var seed "count" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool) "about 10 polls in 1s" true (c1 >= 8. && c1 <= 12.);
  (* grant 10x the polling capacity *)
  let res2 = Array.copy res in
  res2.(Farm_almanac.Analysis.resource_index Farm_almanac.Analysis.Pcie) <-
    1000.;
  Seed_exec.set_resources seed res2;
  Engine.run ~until:2. engine;
  let c2 =
    match Seed_exec.var seed "count" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "10x faster after realloc (%.0f then %.0f)" c1 (c2 -. c1))
    true
    (c2 -. c1 >= 80.);
  match Seed_exec.var seed "reallocs" with
  | Some (Value.Num n) -> Alcotest.(check (float 0.)) "realloc event fired" 1. n
  | _ -> Alcotest.fail "reallocs unbound"

let test_inter_seed_messaging () =
  (* two machine types in one task: Sensor seeds broadcast to the Mirror
     machine; a directed send (@ switch) reaches only that switch's seed *)
  let engine = Engine.create ~seed:17 () in
  let topo = Topology.linear ~n:2 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Sensor {
  place all;
  time tick = Time { .ival = 0.5 };
  long fired = 0;
  state s {
    when (tick as t) do {
      if (fired == 0) then {
        send 41 to Mirror;                  // broadcast to all Mirror seeds
        send 1 to Mirror @ 0;               // directed: switch 0 only
        fired = 1;
      }
    }
  }
}
machine Mirror {
  place all;
  long total = 0;
  state s {
    when (recv long v from Sensor) do { total = total + v; }
  }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"pair" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:2. engine;
  let mirror_total node =
    match Seeder.seed_on seeder task ~machine:"Mirror" ~node with
    | Some s -> (
        match Seed_exec.var s "total" with
        | Some (Value.Num n) -> n
        | _ -> Alcotest.fail "total unbound")
    | None -> Alcotest.failf "no Mirror seed on switch %d" node
  in
  (* both sensors broadcast 41 once (2x41); switch 0 additionally got two
     directed 1s (one from each sensor) *)
  Alcotest.(check (float 0.)) "switch 0: broadcasts + directed" 84.
    (mirror_total 0);
  Alcotest.(check (float 0.)) "switch 1: broadcasts only" 82.
    (mirror_total 1)

let test_switch_failure_recovery () =
  (* a task placeable anywhere survives a switch failure: its seed is lost
     with the switch and restarted elsewhere by re-optimization *)
  let engine = Engine.create ~seed:13 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Roam {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long polls = 0;
  state s { when (ticks as stats) do { polls = polls + 1; } }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"roam" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:1. engine;
  let seed = List.hd (Seeder.seeds seeder task) in
  let home = Seed_exec.node seed in
  Seeder.fail_switch seeder home;
  Alcotest.(check (list int)) "marked failed" [ home ]
    (Seeder.failed_switches seeder);
  (* the replacement seed lives on another switch and polls again *)
  (match Seeder.seeds seeder task with
  | [ replacement ] ->
      Alcotest.(check bool) "moved off the failed switch" true
        (Seed_exec.node replacement <> home);
      Engine.run ~until:2. engine;
      (match Seed_exec.var replacement "polls" with
      | Some (Value.Num n) ->
          Alcotest.(check bool) "polling resumed" true (n > 10.)
      | _ -> Alcotest.fail "polls unbound")
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds));
  (* the old instance is dead *)
  Alcotest.(check bool) "old instance destroyed" false (Seed_exec.is_alive seed)

let test_switch_failure_drops_pinned_task () =
  (* a task pinned to one switch cannot survive that switch's failure *)
  let engine = Engine.create ~seed:14 () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Pinned {
  place any "leaf0";
  long x;
  state s { }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"pinned" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  let node = Seed_exec.node (List.hd (Seeder.seeds seeder task)) in
  Seeder.fail_switch seeder node;
  Alcotest.(check int) "task dropped with its only switch" 0
    (List.length (Seeder.seeds seeder task))

let test_reoptimize_migrates_on_arrival () =
  (* a later, more valuable task can push an existing movable seed to its
     other candidate switch; the migrated seed keeps its state *)
  let engine = Engine.create ~seed:15 () in
  let topo = Topology.linear ~n:2 in
  let fabric = Fabric.create topo in
  let seeder = Seeder.create engine fabric in
  let source =
    {|
machine Counting {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long polls = 0;
  state s { when (ticks as stats) do { polls = polls + 1; } }
}
|}
  in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"count" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:1. engine;
  let seed = List.hd (Seeder.seeds seeder task) in
  let polls_before =
    match Seed_exec.var seed "polls" with
    | Some (Value.Num n) -> n
    | _ -> 0.
  in
  Alcotest.(check bool) "accumulated state" true (polls_before > 50.);
  (* migration through the seeder API *)
  Seeder.reoptimize seeder;
  Engine.run ~until:3. engine;
  match Seeder.seeds seeder task with
  | [ s ] -> (
      match Seed_exec.var s "polls" with
      | Some (Value.Num n) ->
          Alcotest.(check bool) "state preserved across reoptimize" true
            (n >= polls_before)
      | _ -> Alcotest.fail "polls unbound")
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Self-healing: checkpoints, idempotence, detection, recovery         *)
(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* -- checkpoint codec round-trip (qcheck) -------------------------- *)

let value_gen =
  let open QCheck2.Gen in
  let finite_float =
    oneof
      [ float_range (-1e12) 1e12;
        oneofl [ 0.; -0.; 1e-300; 4.2; 1.5e9; -7.25 ] ]
  in
  let ipaddr = map Farm_net.Ipaddr.of_int (int_range 0 0xFFFFFFFF) in
  let prefix =
    map2
      (fun a l -> Farm_net.Ipaddr.Prefix.make a l)
      ipaddr (int_range 0 32)
  in
  let proto = oneofl [ Flow.Tcp; Flow.Udp; Flow.Icmp ] in
  let fatom =
    oneof
      [ map (fun p -> Filter.Src_ip p) prefix;
        map (fun p -> Filter.Dst_ip p) prefix;
        map (fun p -> Filter.Src_port p) (int_range 0 65535);
        map (fun p -> Filter.Dst_port p) (int_range 0 65535);
        map (fun p -> Filter.Port p) (int_range 0 65535);
        map (fun p -> Filter.Proto p) proto;
        return Filter.Any ]
  in
  let filter =
    sized
      (fix (fun self n ->
           if n <= 0 then
             oneof [ oneofl [ Filter.True; Filter.False ]; map Filter.atom fatom ]
           else
             oneof
               [ map Filter.atom fatom;
                 map2 (fun a b -> Filter.And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Filter.Or (a, b)) (self (n / 2)) (self (n / 2));
                 map (fun a -> Filter.Not a) (self (n / 2)) ]))
  in
  let action =
    oneof
      [ map (fun p -> Tcam.Forward p) (int_range 0 64);
        return Tcam.Drop;
        map (fun r -> Tcam.Rate_limit r) (float_range 0. 1e9);
        map (fun q -> Tcam.Set_qos q) (int_range 0 7);
        return Tcam.Mirror; return Tcam.Count ]
  in
  let str = string_small_of printable in
  let packet =
    let* src = ipaddr and* dst = ipaddr in
    let* sport = int_range 0 65535 and* dport = int_range 0 65535 in
    let* proto = proto and* size = int_range 0 9000 in
    let* syn = bool and* ack = bool and* fin = bool and* rst = bool in
    let* payload = str in
    return
      { Flow.tuple = { Flow.src; dst; sport; dport; proto }; size;
        flags = { Flow.syn; ack; fin; rst }; payload }
  in
  let stats = map (fun l -> Array.of_list l) (list_size (int_range 0 8) finite_float) in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  sized
    (fix (fun self n ->
         let leaf =
           oneof
             [ return Value.Unit;
               map (fun b -> Value.Bool b) bool;
               map (fun f -> Value.Num f) finite_float;
               map (fun s -> Value.Str s) str;
               map (fun p -> Value.Packet p) packet;
               map (fun a -> Value.Action a) action;
               map (fun f -> Value.FilterV f) filter;
               map (fun a -> Value.Stats a) stats ]
         in
         if n <= 0 then leaf
         else
           oneof
             [ leaf;
               map (fun l -> Value.List l)
                 (list_size (int_range 0 4) (self (n / 3)));
               map2
                 (fun nm fs -> Value.Struct (nm, fs))
                 name
                 (list_size (int_range 0 4)
                    (pair name (self (n / 3)))) ]))

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"checkpoint: value codec round-trips" ~count:300
    ~print:Value.to_string value_gen (fun v ->
      Value.equal v (Checkpoint.value_of_xml (Checkpoint.value_to_xml v)))

(* machine-state snapshots: distinctly-named vars + a state string *)
let snapshot_gen =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let* names = list_size (int_range 0 8) name in
  let names = List.sort_uniq String.compare names in
  let* vals = flatten_l (List.map (fun _ -> value_gen) names) in
  let* state = name in
  return (List.combine names vals, state)

let vars_equal a b =
  let norm l =
    List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) l
  in
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Value.equal v1 v2)
       (norm a) (norm b)

let prop_checkpoint_roundtrip =
  (* encode -> decode is the identity on full checkpoints, and
     delta + apply reconstructs the follow-up snapshot exactly *)
  QCheck2.Test.make ~name:"checkpoint: delta/apply + wire round-trip"
    ~count:200
    QCheck2.Gen.(pair snapshot_gen snapshot_gen)
    (fun ((base_vars, state0), (next_vars, state1)) ->
      let full =
        { Checkpoint.ck_seed = 3; ck_epoch = 1; ck_seq = 0; ck_full = true;
          ck_vars = base_vars; ck_removed = []; ck_state = state0 }
      in
      let full' = Checkpoint.decode (Checkpoint.encode full) in
      let changed, removed = Checkpoint.delta ~base:base_vars next_vars in
      let delta_ck =
        { Checkpoint.ck_seed = 3; ck_epoch = 1; ck_seq = 1; ck_full = false;
          ck_vars = changed; ck_removed = removed; ck_state = state1 }
      in
      let delta_ck' = Checkpoint.decode (Checkpoint.encode delta_ck) in
      let reconstructed =
        Checkpoint.apply ~base:(Checkpoint.apply ~base:[] full') delta_ck'
      in
      full' = full (* int/bool/string fields *)
      && vars_equal full'.ck_vars base_vars
      && String.equal full'.ck_state state0
      && vars_equal reconstructed next_vars)

(* -- restored checkpoints resume identically on both engines ------- *)

let counting_source =
  {|
machine Counting {
  place any;
  poll ticks = Poll { .ival = 0.01, .what = port ANY };
  long count = 0;
  state s { when (ticks as stats) do { count = count + 1; } }
}
|}

let test_checkpoint_restore_engine_equivalence () =
  (* run a seed, checkpoint it through the wire codec, restore the decoded
     state into a fresh interpreter AND a fresh compiled instance: both
     resume from the same point and stay in lockstep *)
  let program =
    Typecheck.check (Farm_almanac.Parser.program counting_source)
  in
  let polls =
    match Farm_almanac.Analysis.polls (List.hd program.machines) with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let resources = Array.make Farm_almanac.Analysis.n_resources 1. in
  let fresh_exec ?restore engine_kind =
    let engine = Engine.create () in
    let sw = Switch_model.create ~id:0 ~ports:4 () in
    let soil = Soil.create engine sw in
    let exec =
      Seed_exec.deploy ~soil ~program ~machine:"Counting" ~engine:engine_kind
        ?restore ~resources ~polls
        ~send:(fun _ _ _ -> ())
        ~seed_id:1 ()
    in
    (engine, exec)
  in
  let engine0, exec0 = fresh_exec `Compiled in
  Engine.run ~until:0.5 engine0;
  let vars, state = Seed_exec.snapshot exec0 in
  (* through the wire format *)
  let ck =
    { Checkpoint.ck_seed = 1; ck_epoch = 0; ck_seq = 0; ck_full = true;
      ck_vars = vars; ck_removed = []; ck_state = state }
  in
  let ck = Checkpoint.decode (Checkpoint.encode ck) in
  let restore = (ck.Checkpoint.ck_vars, ck.Checkpoint.ck_state) in
  let count exec =
    match Seed_exec.var exec "count" with
    | Some (Value.Num n) -> n
    | _ -> Alcotest.fail "count unbound"
  in
  let c0 = count exec0 in
  Alcotest.(check bool) "accumulated state" true (c0 > 10.);
  let engine_i, exec_i = fresh_exec ~restore `Interp in
  let engine_c, exec_c = fresh_exec ~restore `Compiled in
  Alcotest.(check (float 0.)) "interp resumes at checkpoint" c0 (count exec_i);
  Alcotest.(check (float 0.)) "compiled resumes at checkpoint" c0
    (count exec_c);
  Engine.run ~until:0.5 engine_i;
  Engine.run ~until:0.5 engine_c;
  Alcotest.(check (float 0.)) "lockstep after resume" (count exec_i)
    (count exec_c);
  Alcotest.(check bool) "both progressed" true (count exec_i > c0);
  Alcotest.(check string) "same machine state" (Seed_exec.state exec_i)
    (Seed_exec.state exec_c)

(* -- idempotent control-message handling --------------------------- *)

let test_ctrl_dup_idempotence () =
  (* a fully duplicating control plane: every message is delivered twice,
     but seeds and harvesters process each logical message exactly once *)
  let engine = Engine.create ~seed:19 () in
  let fabric = Fabric.create (Topology.linear ~n:2) in
  let seeder = Seeder.create engine fabric in
  Seeder.set_ctrl_faults seeder { Seeder.loss = 0.; delay = 0.; dup = 1.0 };
  let source =
    {|
machine Adj {
  place all;
  long count = 0;
  state s {
    when (recv long t from harvester) do {
      count = count + 1;
      send count to harvester;
    }
  }
}
|}
  in
  let harvester_spec =
    { Harvester.on_start = (fun ctx -> ctx.broadcast (Value.Num 7.));
      on_message = (fun _ ~from_switch:_ _ -> ()) }
  in
  let spec =
    { (Seeder.simple_spec ~name:"adj" ~source) with
      Seeder.ts_harvester = harvester_spec }
  in
  let task =
    match Seeder.deploy seeder spec with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:0.5 engine;
  let seeds = Seeder.seeds seeder task in
  Alcotest.(check int) "both seeds placed" 2 (List.length seeds);
  List.iter
    (fun s ->
      (match Seed_exec.var s "count" with
      | Some (Value.Num n) ->
          Alcotest.(check (float 0.)) "broadcast handled exactly once" 1. n
      | _ -> Alcotest.fail "count unbound");
      Alcotest.(check bool) "duplicate inbound copies dropped" true
        (Seed_exec.duplicates_dropped s >= 1))
    seeds;
  let h = Seeder.harvester task in
  Alcotest.(check int) "one report per seed despite duplication" 2
    (Harvester.received_count h);
  Alcotest.(check bool) "harvester dropped the duplicate copies" true
    (Harvester.dup_dropped h >= 2)

(* -- recover on a healthy switch is a no-op ------------------------ *)

let test_double_recovery_noop () =
  let engine = Engine.create ~seed:21 () in
  let fabric = Fabric.create (Topology.linear ~n:2) in
  let seeder = Seeder.create engine fabric in
  let task =
    match
      Seeder.deploy seeder (Seeder.simple_spec ~name:"c" ~source:counting_source)
    with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.run ~until:0.2 engine;
  let exec = List.hd (Seeder.seeds seeder task) in
  let before = Seeder.current_assignments seeder in
  let migrations = Seeder.migrations seeder in
  let epoch = Seed_exec.epoch exec in
  (* both switches are healthy: recovery must change nothing, repeatedly *)
  Seeder.recover_switch seeder 0;
  Seeder.recover_switch seeder 0;
  Seeder.recover_switch ~reoptimize:false seeder 1;
  Seeder.recover_switch seeder 1;
  Engine.run ~until:0.4 engine;
  Alcotest.(check bool) "same instance still running" true
    (match Seeder.seeds seeder task with
    | [ e ] -> e == exec && Seed_exec.is_alive e
    | _ -> false);
  Alcotest.(check int) "epoch unchanged" epoch (Seed_exec.epoch exec);
  Alcotest.(check bool) "assignments unchanged" true
    (Seeder.current_assignments seeder = before);
  Alcotest.(check int) "no migrations" migrations (Seeder.migrations seeder)

(* -- failure detection and automatic recovery ---------------------- *)

let heal_config ?(hb = 0.01) ?(timeout = 0.035) ?(ck = 0.02) () =
  { Seeder.default_config with
    auto_heal = true; heartbeat_interval = hb; detection_timeout = timeout;
    checkpoint_interval = ck }

let make_heal_world ?config ?(seed = 23) ?(source = counting_source) () =
  let engine = Engine.create ~seed () in
  let topo = Topology.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:1 in
  let fabric = Fabric.create topo in
  let config = match config with Some c -> c | None -> heal_config () in
  let seeder = Seeder.create ~config engine fabric in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"heal" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  (engine, seeder, task)

let seed_count exec =
  match Seed_exec.var exec "count" with
  | Some (Value.Num n) -> n
  | _ -> Alcotest.fail "count unbound"

let test_auto_heal_detects_and_recovers () =
  let engine, seeder, task = make_heal_world () in
  Engine.run ~until:0.5 engine;
  let exec = List.hd (Seeder.seeds seeder task) in
  let home = Seed_exec.node exec in
  Alcotest.(check bool) "checkpoints shipped while running" true
    (Seeder.checkpoints_shipped seeder > 0);
  Alcotest.(check bool) "checkpoint bytes costed" true
    (Seeder.checkpoint_bytes seeder > 0.);
  Engine.schedule engine ~delay:0. (fun _ -> Seeder.crash_switch seeder home);
  Engine.run ~until:1. engine;
  (* the detector noticed within its timeout (+ one heartbeat of slack) *)
  Alcotest.(check int) "one detection" 1 (Seeder.detections seeder);
  Alcotest.(check int) "no false positives" 0 (Seeder.false_detections seeder);
  let dl = Seeder.detection_latency seeder in
  Alcotest.(check int) "latency recorded" 1 (Farm_sim.Metrics.Histogram.count dl);
  let latency = Farm_sim.Metrics.Histogram.mean dl in
  Alcotest.(check bool)
    (Printf.sprintf "detection latency %.4f within bound" latency)
    true
    (latency > 0.02 && latency < 0.035 +. 0.01 +. 0.002);
  (* the orphan was re-placed automatically, off the dead switch *)
  Alcotest.(check bool) "auto recovery happened" true
    (Seeder.auto_recoveries seeder >= 1);
  (match Seeder.seeds seeder task with
  | [ replacement ] ->
      Alcotest.(check bool) "moved off the crashed switch" true
        (Seed_exec.node replacement <> home);
      Alcotest.(check bool) "replacement polls again" true
        (seed_count replacement > 10.)
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds));
  let rt = Seeder.recovery_time seeder in
  Alcotest.(check bool) "recovery within detection + re-placement" true
    (Farm_sim.Metrics.Histogram.count rt >= 1
    && Farm_sim.Metrics.Histogram.max rt < 0.035 +. 0.01 +. 0.005);
  Alcotest.(check (list int)) "no orphans left" []
    (Seeder.orphaned_seeds seeder);
  Alcotest.(check (list int)) "failure is on the books" [ home ]
    (Seeder.failed_switches seeder)

let test_bounded_state_loss () =
  (* a crash loses at most one checkpoint interval of machine state: the
     count restored from the last checkpoint trails the pre-crash count by
     no more than interval/poll-period ticks (plus in-flight slack) *)
  let config = heal_config ~ck:0.05 () in
  let engine, seeder, task = make_heal_world ~config () in
  Engine.run ~until:0.4 engine;
  let exec = List.hd (Seeder.seeds seeder task) in
  let home = Seed_exec.node exec in
  let seed_id = Seed_exec.seed_id exec in
  let pre = ref 0. in
  Engine.schedule engine ~delay:0.1 (fun _ ->
      pre := seed_count exec;
      Seeder.crash_switch seeder home);
  (* stop after the crash but before detection: the seeder's stored
     checkpoint is the one recovery will restore from *)
  Engine.run ~until:0.52 engine;
  Alcotest.(check bool) "had accumulated state" true (!pre > 30.);
  let ck_count =
    match Seeder.last_checkpoint seeder seed_id with
    | Some (_, vars, state) ->
        Alcotest.(check string) "machine state checkpointed" "s" state;
        (match List.assoc_opt "count" vars with
        | Some (Value.Num n) -> n
        | _ -> Alcotest.fail "count not in checkpoint")
    | None -> Alcotest.fail "no checkpoint stored"
  in
  let lost = !pre -. ck_count in
  Alcotest.(check bool)
    (Printf.sprintf "lost %.0f ticks <= one interval" lost)
    true
    (lost >= 0. && lost <= (0.05 /. 0.01) +. 2.);
  Engine.run ~until:1. engine;
  (* and the replacement resumed from that checkpoint, not from zero *)
  match Seeder.seeds seeder task with
  | [ replacement ] ->
      Alcotest.(check bool) "resumed from the checkpoint" true
        (seed_count replacement >= ck_count +. 30.)
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds)

let test_crash_during_recovery () =
  (* an operator repairs the switch before the detector fires: the seed is
     re-pushed on the next heartbeat; a second, unattended crash is then
     healed by the detector.  Epochs increase across both recoveries. *)
  let engine, seeder, task = make_heal_world ~config:(heal_config ~ck:0.02 ()) () in
  Engine.run ~until:0.3 engine;
  let exec = List.hd (Seeder.seeds seeder task) in
  let home = Seed_exec.node exec in
  let seed_id = Seed_exec.seed_id exec in
  Engine.schedule engine ~delay:0. (fun _ -> Seeder.crash_switch seeder home);
  Engine.run ~until:0.305 engine;
  Alcotest.(check (list int)) "crash is silent" [] (Seeder.failed_switches seeder);
  Alcotest.(check (list int)) "seed orphaned" [ seed_id ]
    (Seeder.orphaned_seeds seeder);
  (* operator wins the race against the detector *)
  Seeder.recover_switch seeder home;
  Engine.run ~until:0.4 engine;
  Alcotest.(check int) "detector never fired" 0 (Seeder.detections seeder);
  Alcotest.(check int) "rejoined on heartbeat" 1 (Seeder.auto_recoveries seeder);
  (match Seeder.seeds seeder task with
  | [ e ] ->
      Alcotest.(check int) "restarted in place" home (Seed_exec.node e);
      Alcotest.(check int) "epoch bumped by rejoin" 1 (Seed_exec.epoch e)
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds));
  (* second crash: nobody calls recover; the detector must heal it *)
  Engine.schedule engine ~delay:0. (fun _ -> Seeder.crash_switch seeder home);
  Engine.run ~until:0.8 engine;
  Alcotest.(check int) "detector healed the second crash" 1
    (Seeder.detections seeder);
  (match Seeder.seeds seeder task with
  | [ e ] ->
      Alcotest.(check bool) "moved off the dead switch" true
        (Seed_exec.node e <> home);
      Alcotest.(check int) "epoch bumped again" 2 (Seed_exec.epoch e)
  | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds));
  Alcotest.(check (list int)) "no orphans left" []
    (Seeder.orphaned_seeds seeder)

(* -- false positives: zombies are fenced, never corrupt state ------ *)

let epochs_non_decreasing h =
  (* accepted_provenance is most-recent-first *)
  let by_seed = Hashtbl.create 8 in
  List.iter
    (fun (_, p) ->
      (* walking most-recent-first, epochs must never increase *)
      match Hashtbl.find_opt by_seed p.Harvester.p_seed with
      | Some newer when p.Harvester.p_epoch > newer -> Alcotest.fail
            (Printf.sprintf "seed %d accepted epoch %d after %d"
               p.Harvester.p_seed p.Harvester.p_epoch newer)
      | _ -> Hashtbl.replace by_seed p.Harvester.p_seed p.Harvester.p_epoch)
    (Harvester.accepted_provenance h)

let test_false_positive_zombie_fencing () =
  (* a control-plane brownout starves the detector of heartbeats: both
     switches are falsely declared dead, their live instances demoted to
     zombies.  When heartbeats resume the switches rejoin, zombies are
     terminated, and no stale-epoch report is ever accepted. *)
  let source =
    {|
machine Rep {
  place all;
  time tick = Time { .ival = 0.01 };
  long n = 0;
  state s { when (tick as t) do { n = n + 1; send n to harvester; } }
}
|}
  in
  let engine = Engine.create ~seed:29 () in
  let fabric = Fabric.create (Topology.linear ~n:2) in
  let config = heal_config ~timeout:0.025 () in
  let seeder = Seeder.create ~config engine fabric in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"rep" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Engine.schedule engine ~delay:0.3 (fun _ ->
      Seeder.set_ctrl_faults seeder { Seeder.loss = 1.0; delay = 0.; dup = 0. });
  Engine.schedule engine ~delay:0.36 (fun _ ->
      Seeder.set_ctrl_faults seeder Seeder.perfect_ctrl);
  Engine.run ~until:0.7 engine;
  Alcotest.(check int) "both declarations were false positives"
    (Seeder.detections seeder)
    (Seeder.false_detections seeder);
  Alcotest.(check bool) "switches were falsely declared" true
    (Seeder.false_detections seeder >= 2);
  Alcotest.(check (list int)) "everyone rejoined" []
    (Seeder.failed_switches seeder);
  Alcotest.(check int) "no zombie left running" 0 (Seeder.zombie_count seeder);
  Alcotest.(check bool) "zombies were fenced" true
    (Seeder.zombies_fenced seeder >= 2);
  Alcotest.(check int) "both seeds live again" 2
    (List.length (Seeder.seeds seeder task));
  Alcotest.(check (list int)) "no orphans" [] (Seeder.orphaned_seeds seeder);
  List.iter
    (fun e -> Alcotest.(check bool) "replacement epoch > 0" true
        (Seed_exec.epoch e >= 1))
    (Seeder.seeds seeder task);
  epochs_non_decreasing (Seeder.harvester task)

(* ------------------------------------------------------------------ *)
(* Overload protection                                                 *)
(* ------------------------------------------------------------------ *)

let test_token_bucket_pacing () =
  let open Overload in
  let b = Token_bucket.create ~rate:10. ~burst:2. in
  Alcotest.(check (float 1e-9)) "starts full" 2. (Token_bucket.level b ~now:0.);
  Alcotest.(check (float 1e-9)) "burst: first free" 0.
    (Token_bucket.reserve b ~now:0.);
  Alcotest.(check (float 1e-9)) "burst: second free" 0.
    (Token_bucket.reserve b ~now:0.);
  (* the bucket is empty: overdraw and pay with delay *)
  Alcotest.(check (float 1e-9)) "third paced one token" 0.1
    (Token_bucket.reserve b ~now:0.);
  Alcotest.(check (float 1e-9)) "debt accumulates" 0.2
    (Token_bucket.reserve b ~now:0.);
  (* idle time refills, capped at burst *)
  Alcotest.(check (float 1e-9)) "refill capped at burst" 2.
    (Token_bucket.level b ~now:10.);
  Alcotest.(check (float 1e-9)) "free again after refill" 0.
    (Token_bucket.reserve b ~now:10.)

let test_breaker_state_machine () =
  let open Overload in
  let b = Breaker.create ~threshold:3 ~cooldown:0.5 in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b ~now:0.);
  Breaker.failure b ~now:0.;
  Breaker.failure b ~now:0.;
  Alcotest.(check bool) "below threshold stays closed" false
    (Breaker.is_open b);
  Breaker.failure b ~now:0.;
  Alcotest.(check bool) "threshold trips open" true (Breaker.is_open b);
  Alcotest.(check int) "open counted" 1 (Breaker.opens b);
  Alcotest.(check bool) "open rejects" false (Breaker.allow b ~now:0.1);
  Alcotest.(check bool) "cooldown expiry admits one probe" true
    (Breaker.allow b ~now:0.6);
  Alcotest.(check string) "half-open while probing" "half_open"
    (Breaker.state_name b);
  Alcotest.(check bool) "no second probe" false (Breaker.allow b ~now:0.6);
  Breaker.failure b ~now:0.6;
  Alcotest.(check bool) "probe failure re-opens" true (Breaker.is_open b);
  Alcotest.(check int) "re-open counted" 2 (Breaker.opens b);
  Alcotest.(check bool) "next probe after cooldown" true
    (Breaker.allow b ~now:1.2);
  Breaker.success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_name b);
  Alcotest.(check bool) "closed allows again" true (Breaker.allow b ~now:1.2);
  (* success resets the consecutive-failure count *)
  Breaker.failure b ~now:1.3;
  Breaker.success b;
  Breaker.failure b ~now:1.4;
  Breaker.failure b ~now:1.4;
  Alcotest.(check bool) "failure streak broken by success" false
    (Breaker.is_open b)

let test_aimd_recovers_exactly () =
  let s = ref 1. in
  for _ = 1 to 10 do s := Overload.back_off !s done;
  Alcotest.(check (float 0.)) "floored" Overload.aimd_floor !s;
  let n = ref 0 in
  while !s < 1. do
    s := Overload.recover !s;
    incr n
  done;
  (* dyadic constants: the scale lands on exactly 1.0, in a bounded
     number of clear ticks, so a recovered seed is byte-identical to one
     that was never degraded *)
  Alcotest.(check (float 0.)) "returns to exactly 1.0" 1. !s;
  Alcotest.(check bool) "bounded recovery interval" true (!n <= 8)

(* A control-channel brownout shorter than the detection timeout: data
   sends are lost, breakers trip open and the retry cap bounds the storm —
   but heartbeats are never gated by the breaker, so the detector sees no
   gap and the open breaker must not trigger a false migration storm. *)
let test_breaker_brownout_no_migration_storm () =
  let source =
    {|
machine Chat {
  place all;
  time tick = Time { .ival = 0.001 };
  long n = 0;
  state s { when (tick as t) do { n = n + 1; send n to harvester; } }
}
|}
  in
  let engine = Engine.create ~seed:31 () in
  let fabric = Fabric.create (Topology.linear ~n:2) in
  let config =
    { Seeder.overload_defaults with
      Seeder.auto_heal = true;
      ctrl_protection =
        Some
          { Seeder.default_protection with
            Seeder.breaker_threshold = 3; max_inflight_retries = 1 } }
  in
  let seeder = Seeder.create ~config engine fabric in
  let task =
    match Seeder.deploy seeder (Seeder.simple_spec ~name:"chat" ~source) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  Alcotest.(check bool) "protection armed" true
    (Seeder.ctrl_protection_enabled seeder);
  Engine.schedule engine ~delay:0.2 (fun _ ->
      Seeder.set_ctrl_faults seeder { Seeder.loss = 1.0; delay = 0.; dup = 0. });
  Engine.schedule engine ~delay:0.215 (fun _ ->
      Seeder.set_ctrl_faults seeder Seeder.perfect_ctrl);
  Engine.run ~until:0.6 engine;
  Alcotest.(check bool) "breakers tripped" true (Seeder.breaker_opens seeder >= 1);
  Alcotest.(check bool) "retry storm was capped" true
    (Seeder.retry_capped seeder >= 1);
  Alcotest.(check bool) "messages were lost" true
    (Seeder.lost_messages seeder >= 1);
  (* the brownout was shorter than the detection timeout and heartbeats
     bypass the breaker: no detection, no migration, nobody fenced *)
  Alcotest.(check int) "no detections" 0 (Seeder.detections seeder);
  Alcotest.(check int) "no false detections" 0 (Seeder.false_detections seeder);
  Alcotest.(check int) "no migrations" 0 (Seeder.migrations seeder);
  Alcotest.(check (list int)) "no failed switches" []
    (Seeder.failed_switches seeder);
  Alcotest.(check int) "no zombies" 0 (Seeder.zombie_count seeder);
  Alcotest.(check int) "both seeds alive" 2
    (List.length (Seeder.seeds seeder task));
  (* once the channel heals, the half-open probes succeed and close *)
  List.iter
    (fun soil ->
      match Seeder.breaker_state seeder (Soil.node_id soil) with
      | None -> ()
      | Some s -> Alcotest.(check string) "breaker closed again" "closed" s)
    (Seeder.soils seeder)

(* qcheck: harvester fencing under bursty re-instantiation.  Random
   interleavings of fence raises and report storms (stale epochs, replays,
   bursts) are replayed against a reference model: no stale-epoch report
   is ever admitted, dedup is exact, and the counters balance — with the
   bounded inbox on, shedding changes *which* fresh reports land but never
   the fencing/dedup decisions. *)
type hop = Hfence of int * int | Hreport of int * int * int

let prop_harvester_fencing =
  let open QCheck2.Gen in
  let op =
    frequency
      [ (1, map2 (fun s e -> Hfence (s, e)) (int_range 0 2) (int_range 0 4));
        (4,
         map2
           (fun s (e, q) -> Hreport (s, e, q))
           (int_range 0 2)
           (pair (int_range 0 4) (int_range 0 9))) ]
  in
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Hfence (s, e) -> Printf.sprintf "F%d:%d" s e
           | Hreport (s, e, q) -> Printf.sprintf "R%d:%d:%d" s e q)
         ops)
  in
  QCheck2.Test.make ~name:"harvester: fencing under bursty re-instantiation"
    ~count:500 ~print
    (list_size (int_range 1 120) op)
    (fun ops ->
      let mk () =
        Harvester.create Harvester.collector_spec
          { Harvester.send_to_seed = (fun ~switch:_ _ -> ());
            broadcast = (fun _ -> ());
            now = (fun () -> 0.);
            log = (fun _ -> ()) }
      in
      let h = mk () in
      (* same op stream against a bounded inbox: seeds compete for a
         5-report budget, so plenty of fresh reports get shed *)
      let hb = mk () in
      Harvester.set_overload hb
        (Some { Harvester.window = 1.0; max_reports = 5 });
      (* reference model: per-seed fence + per-instance seen set (reset
         whenever the fence rises, like the runtime's dedup) *)
      let fences = Hashtbl.create 4 in
      let seen = Hashtbl.create 4 in
      let m_accepted = ref [] in
      let m_stale = ref 0 and m_dup = ref 0 and n_reports = ref 0 in
      let m_fence s e =
        let cur = Option.value (Hashtbl.find_opt fences s) ~default:(-1) in
        if e > cur then begin
          Hashtbl.replace fences s e;
          Hashtbl.replace seen s []
        end
      in
      let m_report s e q =
        incr n_reports;
        let cur = Option.value (Hashtbl.find_opt fences s) ~default:(-1) in
        if e < cur then incr m_stale
        else begin
          m_fence s e;
          let sq = Option.value (Hashtbl.find_opt seen s) ~default:[] in
          if List.mem q sq then incr m_dup
          else begin
            Hashtbl.replace seen s (q :: sq);
            m_accepted := (s, e, q) :: !m_accepted
          end
        end
      in
      List.iter
        (function
          | Hfence (s, e) ->
              Harvester.fence h ~seed_id:s ~epoch:e;
              Harvester.fence hb ~seed_id:s ~epoch:e;
              m_fence s e
          | Hreport (s, e, q) ->
              let p = { Harvester.p_seed = s; p_epoch = e; p_seq = q } in
              let v = Value.Num (float_of_int q) in
              Harvester.handle ~provenance:p h ~from_switch:s v;
              Harvester.handle ~provenance:p hb ~from_switch:s v;
              m_report s e q)
        ops;
      let prov hx =
        List.rev_map
          (fun (_, p) ->
            (p.Harvester.p_seed, p.Harvester.p_epoch, p.Harvester.p_seq))
          (Harvester.accepted_provenance hx)
      in
      (* unbounded inbox matches the model exactly *)
      if prov h <> List.rev !m_accepted then
        QCheck2.Test.fail_reportf "accepted reports diverge from model";
      if Harvester.received_count h <> List.length !m_accepted then
        QCheck2.Test.fail_reportf "received_count %d <> |accepted| %d"
          (Harvester.received_count h)
          (List.length !m_accepted);
      if Harvester.stale_dropped h <> !m_stale then
        QCheck2.Test.fail_reportf "stale %d <> model %d"
          (Harvester.stale_dropped h) !m_stale;
      if Harvester.dup_dropped h <> !m_dup then
        QCheck2.Test.fail_reportf "dup %d <> model %d"
          (Harvester.dup_dropped h) !m_dup;
      (* bounded inbox: fencing/dedup decisions are unchanged (shedding
         runs after them), the balance holds, and sheds account exactly
         for the difference in delivered reports *)
      List.iter
        (fun hx ->
          if
            Harvester.offered_count hx
            <> Harvester.received_count hx + Harvester.stale_dropped hx
               + Harvester.dup_dropped hx + Harvester.shed_count hx
          then
            QCheck2.Test.fail_reportf
              "balance broken: offered %d <> %d recv + %d stale + %d dup + \
               %d shed"
              (Harvester.offered_count hx)
              (Harvester.received_count hx)
              (Harvester.stale_dropped hx) (Harvester.dup_dropped hx)
              (Harvester.shed_count hx))
        [ h; hb ];
      if Harvester.offered_count h <> !n_reports then
        QCheck2.Test.fail_reportf "offered %d <> reports sent %d"
          (Harvester.offered_count h) !n_reports;
      if Harvester.stale_dropped hb <> !m_stale then
        QCheck2.Test.fail_reportf "bounded inbox changed stale decisions";
      if Harvester.dup_dropped hb <> !m_dup then
        QCheck2.Test.fail_reportf "bounded inbox changed dedup decisions";
      if
        Harvester.received_count hb + Harvester.shed_count hb
        <> Harvester.received_count h
      then
        QCheck2.Test.fail_reportf
          "sheds don't account for delivery gap: %d recv + %d shed <> %d"
          (Harvester.received_count hb)
          (Harvester.shed_count hb)
          (Harvester.received_count h);
      if
        Harvester.received_count hb
        <> List.length (Harvester.accepted_provenance hb)
      then
        QCheck2.Test.fail_reportf
          "bounded inbox received_count inconsistent with provenance";
      (* per-seed accepted epochs never go backwards, even under storms *)
      List.iter
        (fun hx ->
          let last = Hashtbl.create 4 in
          List.iter
            (fun (_, p) ->
              let prev =
                Option.value
                  (Hashtbl.find_opt last p.Harvester.p_seed)
                  ~default:(-1)
              in
              if p.Harvester.p_epoch < prev then
                QCheck2.Test.fail_reportf
                  "seed %d accepted epoch %d after %d" p.Harvester.p_seed
                  p.Harvester.p_epoch prev;
              Hashtbl.replace last p.Harvester.p_seed p.Harvester.p_epoch)
            (List.rev (Harvester.accepted_provenance hx)))
        [ h; hb ];
      true)

let () =
  Alcotest.run "farm_runtime"
    [ ( "models",
        [ Alcotest.test_case "cpu accounting" `Quick test_cpu_model_accounting;
          Alcotest.test_case "ipc latency shape" `Quick test_ipc_latency_shape ] );
      ( "soil",
        [ Alcotest.test_case "poll delivery" `Quick test_soil_poll_delivery;
          Alcotest.test_case "aggregation saves ASIC polls" `Quick
            test_soil_aggregation_saves_asic_polls;
          Alcotest.test_case "aggregated rate is fastest" `Quick
            test_soil_aggregated_rate_is_fastest;
          Alcotest.test_case "PCIe saturation" `Quick test_soil_pcie_saturation;
          Alcotest.test_case "probe sampling" `Quick test_soil_probe_sampling;
          Alcotest.test_case "tcam mediation" `Quick test_soil_tcam_mediation ] );
      ( "seeder",
        [ Alcotest.test_case "deploy and detect" `Quick
            test_seeder_deploy_and_detect;
          Alcotest.test_case "harvester feedback" `Quick
            test_seeder_harvester_feedback;
          Alcotest.test_case "collector accounting" `Quick
            test_seeder_collector_accounting;
          Alcotest.test_case "undeploy releases" `Quick
            test_seeder_undeploy_releases;
          Alcotest.test_case "verify_on_deploy gate" `Quick
            test_seeder_verify_on_deploy;
          Alcotest.test_case "rejects bad programs" `Quick
            test_seeder_rejects_bad_programs ] );
      ( "migration",
        [ Alcotest.test_case "migration preserves state" `Quick
            test_seed_migration_preserves_state;
          Alcotest.test_case "realloc changes poll rate" `Quick
            test_seed_realloc_changes_poll_rate;
          Alcotest.test_case "reoptimize keeps state" `Quick
            test_reoptimize_migrates_on_arrival ] );
      ( "messaging",
        [ Alcotest.test_case "inter-seed broadcast and directed" `Quick
            test_inter_seed_messaging ] );
      ( "fault tolerance",
        [ Alcotest.test_case "switch failure recovery" `Quick
            test_switch_failure_recovery;
          Alcotest.test_case "pinned task dropped" `Quick
            test_switch_failure_drops_pinned_task ] );
      ( "checkpoints",
        qsuite [ prop_value_roundtrip; prop_checkpoint_roundtrip ]
        @ [ Alcotest.test_case "restore equivalence across engines" `Quick
              test_checkpoint_restore_engine_equivalence ] );
      ( "idempotence",
        [ Alcotest.test_case "ctrl-dup handled exactly once" `Quick
            test_ctrl_dup_idempotence;
          Alcotest.test_case "double recovery is a no-op" `Quick
            test_double_recovery_noop ] );
      ( "self-healing",
        [ Alcotest.test_case "detects and recovers" `Quick
            test_auto_heal_detects_and_recovers;
          Alcotest.test_case "bounded state loss" `Quick
            test_bounded_state_loss;
          Alcotest.test_case "crash during recovery" `Quick
            test_crash_during_recovery;
          Alcotest.test_case "false positive zombie fencing" `Quick
            test_false_positive_zombie_fencing ] );
      ( "overload",
        [ Alcotest.test_case "token bucket pacing" `Quick
            test_token_bucket_pacing;
          Alcotest.test_case "breaker state machine" `Quick
            test_breaker_state_machine;
          Alcotest.test_case "AIMD recovers exactly" `Quick
            test_aimd_recovers_exactly;
          Alcotest.test_case "brownout: no migration storm" `Quick
            test_breaker_brownout_no_migration_storm ]
        @ qsuite [ prop_harvester_fencing ] ) ]

(* Tests for the discrete-event simulation core: RNG determinism and
   distributions, heap ordering, engine scheduling semantics, metrics. *)

open Farm_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* after splitting, drawing from one stream does not affect the other's
     reproducibility *)
  let a' = Rng.create 7 in
  let c' = Rng.split a' in
  let _ = Rng.int a 10 in
  Alcotest.(check int) "split streams deterministic" (Rng.int c 1000)
    (Rng.int c' 1000)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.);
    let u = Rng.uniform r 2. 5. in
    Alcotest.(check bool) "uniform in range" true (u >= 2. && u < 5.)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 2.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean near 0.5" true
    (Float.abs (mean -. 0.5) < 0.02)

let test_rng_zipf_skew () =
  let r = Rng.create 5 in
  let n = 1000 in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = Rng.zipf r ~n ~s:1. in
    Alcotest.(check bool) "zipf in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 must be far more popular than rank n/2 *)
  Alcotest.(check bool) "zipf skewed" true (counts.(0) > 10 * counts.(n / 2))

let test_rng_shuffle_permutes () =
  let r = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t t) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ]
    (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.push h ~time:1. x) [ "a"; "b"; "c" ];
  let next () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let x1 = next () in
  let x2 = next () in
  let x3 = next () in
  Alcotest.(check (list string)) "fifo on equal times" [ "a"; "b"; "c" ]
    [ x1; x2; x3 ]

let test_heap_pop_min_exn () =
  let h = Heap.create () in
  Alcotest.check_raises "min_time_exn on empty"
    (Invalid_argument "Heap.min_time_exn: empty heap") (fun () ->
      ignore (Heap.min_time_exn h));
  Alcotest.check_raises "pop_min_exn on empty"
    (Invalid_argument "Heap.pop_min_exn: empty heap") (fun () ->
      ignore (Heap.pop_min_exn h : int));
  List.iter (fun t -> Heap.push h ~time:t (int_of_float t)) [ 3.; 1.; 2. ];
  let out = ref [] in
  while not (Heap.is_empty h) do
    let time = Heap.min_time_exn h in
    let v = Heap.pop_min_exn h in
    out := (time, v) :: !out
  done;
  Alcotest.(check (list (pair (float 0.) int)))
    "exn path drains in order"
    [ (1., 1); (2., 2); (3., 3) ]
    (List.rev !out)

let prop_heap_exn_matches_pop =
  QCheck2.Test.make ~name:"pop_min_exn agrees with pop" ~count:200
    QCheck2.Gen.(list (float_range 0. 100.))
    (fun times ->
      let h1 = Heap.create () and h2 = Heap.create () in
      List.iteri (fun i t -> Heap.push h1 ~time:t i) times;
      List.iteri (fun i t -> Heap.push h2 ~time:t i) times;
      let rec check () =
        match Heap.pop h1 with
        | None -> Heap.is_empty h2
        | Some (t, v) ->
            (not (Heap.is_empty h2))
            && Heap.min_time_exn h2 = t
            && Heap.pop_min_exn h2 = v
            && check ()
      in
      check ())

let prop_heap_sorted =
  QCheck2.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck2.Gen.(list (float_range 0. 100.))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let rec check last =
        match Heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && check t
      in
      check neg_infinity)

(* Model-based: arbitrary push/pop interleavings against a sorted-list
   model.  Times are quantized to quarters so equal-time ties are frequent
   and the FIFO tie-break is genuinely exercised. *)
let prop_heap_model =
  QCheck2.Test.make ~name:"heap matches sorted-list model (FIFO ties)"
    ~count:300
    QCheck2.Gen.(
      list
        (oneof
           [ map (fun i -> `Push (float_of_int i /. 4.)) (int_bound 40);
             return `Pop ]))
    (fun ops ->
      let h = Heap.create () in
      (* model: (time, seq) pairs kept time-sorted, insertion-stable *)
      let model = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Push time ->
              Heap.push h ~time !seq;
              model :=
                List.stable_sort
                  (fun (t1, _) (t2, _) -> Float.compare t1 t2)
                  (!model @ [ (time, !seq) ]);
              incr seq;
              Heap.size h = List.length !model
          | `Pop -> (
              match !model with
              | [] -> Heap.is_empty h && Heap.pop h = None
              | (time, v) :: rest ->
                  (not (Heap.is_empty h))
                  && Heap.min_time_exn h = time
                  && Heap.pop_min_exn h = v
                  &&
                  (model := rest;
                   true)))
        ops)

let test_heap_pop_releases () =
  (* the vacated slot must not pin the popped value: push two closures,
     pop one, and the popped one has to be collectable immediately *)
  let h = Heap.create () in
  let w = Weak.create 1 in
  let fill () =
    let v = ref 12345 in
    Weak.set w 0 (Some v);
    Heap.push h ~time:1. v;
    Heap.push h ~time:2. (ref 0)
  in
  fill ();
  ignore (Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "popped entry collected" true (Weak.get w 0 = None);
  (* draining to empty drops the backing array entirely *)
  ignore (Heap.pop h);
  Alcotest.(check int) "empty heap holds no array" 0 (Heap.capacity h)

let test_heap_shrinks () =
  let h = Heap.create () in
  for i = 0 to 9_999 do
    Heap.push h ~time:(float_of_int i) i
  done;
  let full_cap = Heap.capacity h in
  Alcotest.(check bool) "grew" true (full_cap >= 10_000);
  for _ = 1 to 9_900 do
    ignore (Heap.pop_min_exn h)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "shrank (cap %d after 100/10000 remain)" (Heap.capacity h))
    true
    (Heap.capacity h < full_cap / 8);
  (* order still intact after shrinking *)
  let prev = ref neg_infinity in
  while not (Heap.is_empty h) do
    let t = Heap.min_time_exn h in
    ignore (Heap.pop_min_exn h);
    Alcotest.(check bool) "still sorted" true (t >= !prev);
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Rng streams                                                         *)
(* ------------------------------------------------------------------ *)

let test_rng_stream_keyed () =
  (* stream k is a pure function of (parent state, k): deriving in any
     order, or after draws from sibling streams, gives the same child *)
  let a = Rng.create 7 and b = Rng.create 7 in
  let a3 = Rng.stream a 3 in
  let _ = Rng.int a3 100 in
  let a5 = Rng.stream a 5 in
  let b5 = Rng.stream b 5 in
  let _ = Rng.int b5 100 in
  let b3 = Rng.stream b 3 in
  Alcotest.(check int) "stream 5 order-independent" (Rng.int a5 1_000_000)
    (Rng.int (Rng.stream b 5) 1_000_000);
  Alcotest.(check int) "stream 3 order-independent" (Rng.int b3 1_000_000)
    (Rng.int (Rng.stream a 3) 1_000_000);
  (* parent state untouched: split after stream = split without *)
  let p = Rng.create 11 and q = Rng.create 11 in
  let _ = Rng.stream p 42 in
  Alcotest.(check int) "parent not advanced"
    (Rng.int (Rng.split q) 1_000_000)
    (Rng.int (Rng.split p) 1_000_000)

let test_rng_stream_distinct () =
  let root = Rng.create 9 in
  let firsts =
    List.init 64 (fun k -> Rng.int (Rng.stream root k) 1_000_000_000)
  in
  let uniq = List.sort_uniq compare firsts in
  Alcotest.(check int) "64 streams, 64 distinct first draws" 64
    (List.length uniq)

let test_rng_derive_seed () =
  Alcotest.(check int) "deterministic"
    (Rng.derive_seed 101 ~stream:3)
    (Rng.derive_seed 101 ~stream:3);
  let seeds = List.init 100 (fun k -> Rng.derive_seed 101 ~stream:k) in
  Alcotest.(check int) "100 streams distinct" 100
    (List.length (List.sort_uniq compare seeds));
  List.iter
    (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0))
    seeds

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let prop_fault_plan_well_formed =
  QCheck2.Test.make ~name:"random_plan is well-formed" ~count:200
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 8))
    (fun (seed, episodes) ->
      let rng = Rng.create seed in
      let switches = [ 0; 1; 2 ] in
      let links = [ (0, 1); (1, 2) ] in
      let horizon = 10. in
      let plan =
        Fault.random_plan ~rng ~switches ~links ~episodes ~horizon ()
      in
      (* sorted, in range *)
      let rec sorted = function
        | { Fault.at = a; _ } :: ({ Fault.at = b; _ } :: _ as rest) ->
            a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      let in_range { Fault.at; _ } = at >= 0. && at <= horizon in
      (* per subject, downs and ups alternate starting with a down *)
      let alternates sel =
        let seqs = Hashtbl.create 4 in
        List.iter
          (fun { Fault.event; _ } ->
            match sel event with
            | Some (key, phase) ->
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt seqs key)
                in
                Hashtbl.replace seqs key (phase :: cur)
            | None -> ())
          plan;
        Hashtbl.fold
          (fun _ phases ok ->
            let rec alt expected = function
              | [] -> true
              | p :: rest -> p = expected && alt (not expected) rest
            in
            ok && alt true (List.rev phases))
          seqs true
      in
      let switch_ok =
        alternates (function
          | Fault.Switch_down n -> Some (n, true)
          | Fault.Switch_up n -> Some (n, false)
          | _ -> None)
      in
      let link_ok =
        alternates (function
          | Fault.Link_down (a, b) -> Some ((a, b), true)
          | Fault.Link_up (a, b) -> Some ((a, b), false)
          | _ -> None)
      in
      let subjects_ok =
        List.for_all
          (fun { Fault.event; _ } ->
            match event with
            | Fault.Switch_down n | Fault.Switch_up n
            | Fault.Counter_freeze n | Fault.Counter_thaw n
            | Fault.Counter_glitch n ->
                List.mem n switches
            | Fault.Link_down (a, b) | Fault.Link_up (a, b) ->
                List.mem (a, b) links
            | Fault.Ctrl_degrade { loss; delay; dup } ->
                loss >= 0. && loss <= 0.5 && delay >= 0. && dup >= 0.
                && dup <= 0.3
            | Fault.Ctrl_restore -> true
            | Fault.Report_storm { node; reports } ->
                List.mem node switches && reports > 0
            | Fault.Pcie_degrade { node; factor } ->
                List.mem node switches && factor > 1.
            | Fault.Pcie_restore n -> List.mem n switches
            | Fault.Traffic_surge { links = ls; factor } ->
                factor > 1. && List.for_all (fun l -> List.mem l links) ls
            | Fault.Traffic_calm { links = ls } ->
                List.for_all (fun l -> List.mem l links) ls)
          plan
      in
      sorted plan
      && List.for_all in_range plan
      && switch_ok && link_ok && subjects_ok)

let test_fault_inject_order () =
  (* events dispatch at their plan times, in order, with on_applied seeing
     the engine clock; past entries are clamped to now *)
  let engine = Engine.create () in
  let applied = ref [] in
  let handlers =
    { Fault.null_handlers with
      Fault.on_switch_down =
        (fun n -> applied := (`H n, Engine.now engine) :: !applied) }
  in
  let plan =
    [ { Fault.at = 0.5; event = Fault.Switch_down 2 };
      { Fault.at = 0.1; event = Fault.Switch_down 1 };
      { Fault.at = -1.; event = Fault.Switch_down 0 } ]
  in
  Fault.inject engine handlers plan ~on_applied:(fun at ev ->
      applied := (`A (at, Fault.event_to_string ev), Engine.now engine)
                 :: !applied);
  Engine.run engine;
  let got = List.rev !applied in
  Alcotest.(check int) "handler + on_applied per event" 6 (List.length got);
  let times = List.map snd got in
  Alcotest.(check (list (float 1e-12))) "dispatch times"
    [ 0.; 0.; 0.1; 0.1; 0.5; 0.5 ] times;
  match got with
  | (`H 0, _) :: (`A (0., "switch_down 0"), _) :: (`H 1, _) :: _ -> ()
  | _ -> Alcotest.fail "unexpected dispatch order"

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun e ->
      log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:1. (fun e ->
      log := ("a", Engine.now e) :: !log;
      Engine.schedule e ~delay:0.5 (fun e ->
          log := ("a2", Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "event order and times"
    [ ("a", 1.); ("a2", 1.5); ("b", 2.) ]
    (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1. (fun _ -> incr fired);
  Engine.schedule e ~delay:5. (fun _ -> incr fired);
  Engine.run ~until:2. e;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock stopped at until" 2. (Engine.now e)

let test_engine_periodic () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.every e ~period:1. (fun _ -> incr count) in
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "5 ticks in 5.5s" 5 !count;
  Engine.cancel timer

let test_engine_cancel () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.every e ~period:1. (fun _ -> incr count) in
  Engine.schedule e ~delay:2.5 (fun _ -> Engine.cancel timer);
  Engine.run ~until:10. e;
  Alcotest.(check int) "cancelled after 2 ticks" 2 !count

let test_engine_set_period () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.every e ~period:1. (fun _ -> incr count) in
  (* After 3 s, slow the timer down 10x.  The tick at t=4 was already
     scheduled with the old period, so ticks land at 1,2,3,4,14,24. *)
  Engine.schedule e ~delay:3.1 (fun _ -> Engine.set_period timer 10.);
  Engine.run ~until:25. e;
  Alcotest.(check int) "adaptive polling rate" 6 !count

let test_engine_past_raises () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1. (fun e ->
      Alcotest.check_raises "past scheduling rejected"
        (Invalid_argument
           "Engine.schedule_at: time 0.5 is in the past (now 1)") (fun () ->
          Engine.schedule_at e ~time:0.5 (fun _ -> ())));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.add c 2.;
  Metrics.Counter.incr c;
  check_float "counter" 3. (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  check_float "reset" 0. (Metrics.Counter.value c)

let test_metrics_histogram () =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.record h) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  check_float "mean" 3. (Metrics.Histogram.mean h);
  check_float "p50" 3. (Metrics.Histogram.percentile h 50.);
  check_float "p0" 1. (Metrics.Histogram.percentile h 0.);
  check_float "p100" 5. (Metrics.Histogram.percentile h 100.);
  check_float "max" 5. (Metrics.Histogram.max h);
  (* interpolation between ranks: p25 of [1..5] is rank 1.0 exactly, p30
     is 1/5 of the way from 2 to 3 *)
  check_float "p25" 2. (Metrics.Histogram.percentile h 25.);
  check_float "p30" 2.2 (Metrics.Histogram.percentile h 30.)

let test_metrics_histogram_edge () =
  let h = Metrics.Histogram.create () in
  (* empty: every percentile is 0 by convention *)
  check_float "empty p0" 0. (Metrics.Histogram.percentile h 0.);
  check_float "empty p50" 0. (Metrics.Histogram.percentile h 50.);
  check_float "empty p100" 0. (Metrics.Histogram.percentile h 100.);
  (* singleton: every percentile is the sample *)
  Metrics.Histogram.record h 7.5;
  check_float "singleton p0" 7.5 (Metrics.Histogram.percentile h 0.);
  check_float "singleton p50" 7.5 (Metrics.Histogram.percentile h 50.);
  check_float "singleton p100" 7.5 (Metrics.Histogram.percentile h 100.);
  (* recording after a percentile read re-sorts correctly *)
  Metrics.Histogram.record h 2.5;
  check_float "resorted p0" 2.5 (Metrics.Histogram.percentile h 0.);
  check_float "resorted p100" 7.5 (Metrics.Histogram.percentile h 100.);
  (* reset returns to the empty convention *)
  Metrics.Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Metrics.Histogram.count h);
  check_float "reset p50" 0. (Metrics.Histogram.percentile h 50.)

let test_metrics_busy () =
  let b = Metrics.Busy.create () in
  Metrics.Busy.add b 0.5;
  Metrics.Busy.add b 0.7;
  check_float "busy time" 1.2 (Metrics.Busy.busy_time b);
  (* 1.2s busy over 1s wall = 120% load: multi-core overcommit *)
  check_float "utilization > 1" 1.2
    (Metrics.Busy.utilization b ~from:0. ~till:1.)

let prop_histogram_percentile_monotone =
  QCheck2.Test.make ~name:"histogram percentiles monotone" ~count:100
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let h = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.record h) xs;
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (Metrics.Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | [ _ ] | [] -> true
      in
      mono vals)

(* ------------------------------------------------------------------ *)
(* Timer-wheel vs seed binary-heap scheduler equivalence               *)
(* ------------------------------------------------------------------ *)

(* The common scheduling surface both implementations expose. *)
module type SCHED = sig
  type t
  type timer

  val create : unit -> t
  val now : t -> float
  val schedule : t -> delay:float -> (t -> unit) -> unit
  val schedule_at : t -> time:float -> (t -> unit) -> unit
  val every : t -> period:float -> ?phase:float -> (t -> unit) -> timer
  val cancel : timer -> unit
  val set_period : timer -> float -> unit
  val run : ?until:float -> t -> unit
  val dispatched : t -> int
end

module Wheel_sched : SCHED = struct
  include Engine

  let create () = Engine.create ()
end

(* The seed implementation, kept verbatim as the executable spec: a
   single binary heap of callback closures, FIFO on time ties (provided
   by Heap's insertion-order tie-break). *)
module Heap_sched : SCHED = struct
  type t = {
    mutable clock : float;
    queue : (t -> unit) Heap.t;
    mutable dispatched : int;
  }

  type timer = {
    mutable period : float;
    mutable cancelled : bool;
    callback : t -> unit;
  }

  let create () = { clock = 0.; queue = Heap.create (); dispatched = 0 }
  let now t = t.clock
  let dispatched t = t.dispatched

  let schedule_at t ~time f =
    if time < t.clock -. 1e-12 then invalid_arg "Heap_sched: past";
    Heap.push t.queue ~time f

  let schedule t ~delay f =
    if delay < 0. then invalid_arg "Heap_sched: negative delay";
    schedule_at t ~time:(t.clock +. delay) f

  let rec fire timer engine =
    if not timer.cancelled then begin
      timer.callback engine;
      if not timer.cancelled then
        schedule engine ~delay:timer.period (fire timer)
    end

  let every t ~period ?phase f =
    if period <= 0. then invalid_arg "Heap_sched: period must be positive";
    let timer = { period; cancelled = false; callback = f } in
    let phase = Option.value phase ~default:period in
    schedule t ~delay:phase (fire timer);
    timer

  let cancel timer = timer.cancelled <- true
  let set_period timer p = timer.period <- p

  let run ?until t =
    let continue = ref true in
    while !continue do
      if Heap.is_empty t.queue then continue := false
      else
        let time = Heap.min_time_exn t.queue in
        match until with
        | Some u when time > u ->
            t.clock <- u;
            continue := false
        | Some _ | None ->
            let f = Heap.pop_min_exn t.queue in
            t.clock <- time;
            t.dispatched <- t.dispatched + 1;
            f t
    done;
    match until with
    | Some u when t.clock < u && Heap.is_empty t.queue -> t.clock <- u
    | Some _ | None -> ()
end

type sc_timer = {
  st_period : float;
  st_phase : float option;
  st_cancel_at : float option; (* cancel via a scheduled one-shot *)
  st_retune : (float * float) option; (* (at, new period) via one-shot *)
}

type scenario = {
  sc_timers : sc_timer list;
  sc_shots : float list; (* one-shot delays from t=0 *)
  sc_chains : (float * float) list; (* outer delay, nested extra delay *)
  sc_split : float; (* fraction of horizon for the segmented run *)
  sc_horizon : float;
}

let show_scenario sc =
  let f = Printf.sprintf "%.17g" in
  let timer st =
    Printf.sprintf "{p=%s ph=%s cancel=%s retune=%s}" (f st.st_period)
      (match st.st_phase with None -> "-" | Some x -> f x)
      (match st.st_cancel_at with None -> "-" | Some x -> f x)
      (match st.st_retune with
      | None -> "-"
      | Some (at, p) -> Printf.sprintf "%s->%s" (f at) (f p))
  in
  Printf.sprintf "timers=[%s] shots=[%s] chains=[%s] split=%s horizon=%s"
    (String.concat "; " (List.map timer sc.sc_timers))
    (String.concat "; " (List.map f sc.sc_shots))
    (String.concat "; "
       (List.map (fun (a, b) -> Printf.sprintf "%s+%s" (f a) (f b)) sc.sc_chains))
    (f sc.sc_split) (f sc.sc_horizon)

(* Drive one scheduler implementation through a scenario and return a
   transcript of every dispatch: tag, source id and the exact clock
   ([%h] prints the full float bit pattern), plus the mid/end clock and
   the dispatch counter.  Two implementations agree iff the transcripts
   are byte-identical. *)
let run_scenario (type e) (module S : SCHED with type t = e) sc =
  let log = Buffer.create 4096 in
  let e = S.create () in
  let record tag id t = Printf.bprintf log "%s%d@%h;" tag id (S.now t) in
  List.iteri
    (fun i st ->
      let tm =
        S.every e ~period:st.st_period ?phase:st.st_phase (fun t ->
            record "t" i t)
      in
      Option.iter
        (fun at ->
          S.schedule e ~delay:at (fun t ->
              record "x" i t;
              S.cancel tm))
        st.st_cancel_at;
      Option.iter
        (fun (at, p) ->
          S.schedule e ~delay:at (fun t ->
              record "r" i t;
              S.set_period tm p))
        st.st_retune)
    sc.sc_timers;
  List.iteri (fun i d -> S.schedule e ~delay:d (fun t -> record "s" i t))
    sc.sc_shots;
  List.iteri
    (fun i (d, extra) ->
      S.schedule e ~delay:d (fun t ->
          record "c" i t;
          S.schedule t ~delay:extra (fun t -> record "C" i t)))
    sc.sc_chains;
  (* run in two segments so ~until clamping is part of the contract *)
  S.run ~until:(sc.sc_split *. sc.sc_horizon) e;
  Printf.bprintf log "|mid=%h|" (S.now e);
  S.run ~until:sc.sc_horizon e;
  Printf.bprintf log "|end=%h,n=%d|" (S.now e) (S.dispatched e);
  Buffer.contents log

(* [dense]: sub-tick and tie-prone periods over a short horizon — stresses
   the ready heap, slot hashing and FIFO tie-breaks.  [sparse]: long
   horizons past the wheel's top window (~3355 s at 0.1 ms ticks) —
   stresses the overflow heap, cascades and idle clock jumps. *)
let gen_scenario ~dense =
  let open QCheck2.Gen in
  let quantized lo step n = map (fun k -> lo +. (float_of_int k *. step)) (int_bound n) in
  let horizon = if dense then 0.25 else 5000. in
  let period =
    if dense then
      oneofl [ 7e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 3.3e-3; 0.01; 0.05 ]
    else oneofl [ 37.; 61.; 123.; 250.; 500.; 900. ]
  in
  let time =
    oneof
      [ float_range 0. horizon;
        quantized 0. (horizon /. 25.) 25;
        (if dense then oneofl [ 0.; 1e-4; 2.5e-4; 0.01; 0.1 ]
         else oneofl [ 0.; 37.; 500.; 3355.; 3356.; 4999. ]) ]
  in
  let timer =
    let* st_period = period in
    let* st_phase = option (oneof [ pure 0.; time; period ]) in
    let* st_cancel_at = option time in
    let* st_retune = option (pair time period) in
    pure { st_period; st_phase; st_cancel_at; st_retune }
  in
  let* sc_timers = list_size (int_bound 4) timer in
  let* sc_shots = list_size (int_bound 12) time in
  let* sc_chains =
    list_size (int_bound 4)
      (pair time (oneof [ pure 0.; float_range 0. (horizon /. 10.) ]))
  in
  let* sc_split = float_range 0.05 0.95 in
  pure { sc_timers; sc_shots; sc_chains; sc_split; sc_horizon = horizon }

let prop_sched_equiv ~dense ~count name =
  QCheck2.Test.make ~name ~count ~print:show_scenario (gen_scenario ~dense)
    (fun sc ->
      let w = run_scenario (module Wheel_sched) sc in
      let h = run_scenario (module Heap_sched) sc in
      if String.equal w h then true
      else
        let first_diff =
          let n = min (String.length w) (String.length h) in
          let rec go i = if i < n && w.[i] = h.[i] then go (i + 1) else i in
          go 0
        in
        let ctx s =
          let from = max 0 (first_diff - 60) in
          String.sub s from (min 120 (String.length s - from))
        in
        QCheck2.Test.fail_reportf
          "dispatch transcripts diverge at byte %d:\n  wheel: …%s…\n  heap:  …%s…"
          first_diff (ctx w) (ctx h))

let prop_sched_equiv_dense =
  prop_sched_equiv ~dense:true ~count:80 "wheel = heap (dense, ties, cancel, set_period)"

let prop_sched_equiv_sparse =
  prop_sched_equiv ~dense:false ~count:80 "wheel = heap (sparse, overflow horizon)"

(* Deterministic far-future case: one-shots past the wheel's top window
   plus a slow periodic timer, with a time tie resolved FIFO. *)
let test_engine_far_future () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag t = log := (tag, Engine.now t) :: !log in
  Engine.schedule_at e ~time:4000. (record "a");
  Engine.schedule_at e ~time:1. (record "b");
  Engine.schedule_at e ~time:4000. (record "c");
  ignore (Engine.every e ~period:1000. (record "p"));
  Engine.run ~until:7000. e;
  let expect =
    [ ("b", 1.); ("p", 1000.); ("p", 2000.); ("p", 3000.); ("a", 4000.);
      ("c", 4000.); ("p", 4000.); ("p", 5000.); ("p", 6000.); ("p", 7000.) ]
  in
  Alcotest.(check (list (pair string (float 0.))))
    "far-future dispatch order" expect (List.rev !log);
  check_float "clock at until" 7000. (Engine.now e);
  Alcotest.(check int) "dispatched" 10 (Engine.dispatched e)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "farm_sim"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick
            test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutes;
          Alcotest.test_case "keyed streams" `Quick test_rng_stream_keyed;
          Alcotest.test_case "streams distinct" `Quick
            test_rng_stream_distinct;
          Alcotest.test_case "derive_seed" `Quick test_rng_derive_seed ] );
      ( "heap",
        [ Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop_min_exn" `Quick test_heap_pop_min_exn;
          Alcotest.test_case "pop releases slot" `Quick
            test_heap_pop_releases;
          Alcotest.test_case "shrinks after drain" `Quick test_heap_shrinks ]
        @ qsuite
            [ prop_heap_sorted; prop_heap_exn_matches_pop; prop_heap_model ]
      );
      ( "fault",
        [ Alcotest.test_case "inject order" `Quick test_fault_inject_order ]
        @ qsuite [ prop_fault_plan_well_formed ] );
      ( "engine",
        [ Alcotest.test_case "order and clock" `Quick
            test_engine_order_and_clock;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "set_period" `Quick test_engine_set_period;
          Alcotest.test_case "past raises" `Quick test_engine_past_raises;
          Alcotest.test_case "far future / overflow" `Quick
            test_engine_far_future ] );
      ( "scheduler equivalence",
        qsuite [ prop_sched_equiv_dense; prop_sched_equiv_sparse ] );
      ( "metrics",
        [ Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "histogram edge cases" `Quick
            test_metrics_histogram_edge;
          Alcotest.test_case "busy" `Quick test_metrics_busy ]
        @ qsuite [ prop_histogram_percentile_monotone ] ) ]

(* Tests for the domain-parallel sweep runner: results keyed by scenario
   index, exception propagation, and — the property the bench harness
   relies on — byte-identical per-scenario simulation digests whether the
   sweep runs sequentially or fanned across domains. *)

open Farm_sim

(* ------------------------------------------------------------------ *)
(* Runner mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let test_sweep_indexed () =
  let r = Sweep.run ~domains:4 100 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land at their scenario index"
    (Array.init 100 (fun i -> i * i))
    r

let test_sweep_degenerate () =
  Alcotest.(check (array int)) "n = 0" [||] (Sweep.run ~domains:4 0 (fun i -> i));
  Alcotest.(check (array int)) "single domain" [| 1; 2; 3 |]
    (Sweep.run ~domains:1 3 (fun i -> i + 1));
  Alcotest.(check (array int)) "more domains than scenarios" [| 0; 10 |]
    (Sweep.run ~domains:8 2 (fun i -> i * 10))

let test_sweep_map () =
  let a = [| "a"; "bb"; "ccc"; "dddd" |] in
  Alcotest.(check (array int)) "map over array" [| 1; 2; 3; 4 |]
    (Sweep.map ~domains:3 a String.length)

exception Boom of int

let test_sweep_exception () =
  match Sweep.run ~domains:4 64 (fun i -> if i = 37 then raise (Boom i) else i) with
  | _ -> Alcotest.fail "expected the scenario exception to propagate"
  | exception Boom 37 -> ()
  | exception e ->
      Alcotest.failf "wrong exception propagated: %s" (Printexc.to_string e)

let test_sweep_default_domains () =
  Alcotest.(check bool) "at least one domain" true (Sweep.default_domains () >= 1)

(* ------------------------------------------------------------------ *)
(* Parallel vs sequential determinism on real simulations              *)
(* ------------------------------------------------------------------ *)

(* A self-contained scenario: all state (engine, fabric, RNG) is built
   inside the call from an index-derived seed, as the Sweep contract
   requires.  The digest captures everything downstream consumers read:
   the dispatch counter, the clock, collector traffic and task state. *)
let scenario_digest i =
  let seed = Rng.derive_seed 7 ~stream:i in
  let w =
    Farm.World.create ~seed ~spines:2 ~leaves:3 ~hosts_per_leaf:1 ()
  in
  (match Farm.World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "scenario %d: heavy-hitter deploy: %s" i m);
  Farm.World.background_traffic ~flows:(8 + (4 * i)) w;
  Farm.World.run ~until:0.3 w;
  let seeder = w.Farm.World.seeder in
  Printf.sprintf "i=%d seed=%d dispatched=%d now=%h collector=%h/%d utility=%h"
    i seed
    (Engine.dispatched w.Farm.World.engine)
    (Farm.World.now w)
    (Farm.Runtime.Seeder.collector_bytes seeder)
    (Farm.Runtime.Seeder.collector_messages seeder)
    (Farm.Runtime.Seeder.current_utility seeder)

let test_sweep_parallel_deterministic () =
  let n = 6 in
  let sequential = Sweep.run ~domains:1 n scenario_digest in
  let parallel = Sweep.run ~domains:4 n scenario_digest in
  Alcotest.(check (array string))
    "parallel digests byte-identical to sequential" sequential parallel;
  (* and a second parallel run agrees with the first *)
  let parallel' = Sweep.run ~domains:4 n scenario_digest in
  Alcotest.(check (array string)) "parallel rerun stable" parallel parallel'

let () =
  Alcotest.run "farm_sweep"
    [ ( "runner",
        [ Alcotest.test_case "indexed results" `Quick test_sweep_indexed;
          Alcotest.test_case "degenerate shapes" `Quick test_sweep_degenerate;
          Alcotest.test_case "map" `Quick test_sweep_map;
          Alcotest.test_case "exception propagation" `Quick
            test_sweep_exception;
          Alcotest.test_case "default domains" `Quick
            test_sweep_default_domains ] );
      ( "determinism",
        [ Alcotest.test_case "parallel = sequential" `Quick
            test_sweep_parallel_deterministic ] ) ]

(* Tests for the domain-parallel sweep runner: results keyed by scenario
   index, exception propagation, and — the property the bench harness
   relies on — byte-identical per-scenario simulation digests whether the
   sweep runs sequentially or fanned across domains. *)

open Farm_sim

(* ------------------------------------------------------------------ *)
(* Runner mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let test_sweep_indexed () =
  let r = Sweep.run ~domains:4 ~clamp:false 100 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land at their scenario index"
    (Array.init 100 (fun i -> i * i))
    r

let test_sweep_degenerate () =
  Alcotest.(check (array int)) "n = 0" [||] (Sweep.run ~domains:4 ~clamp:false 0 (fun i -> i));
  Alcotest.(check (array int)) "single domain" [| 1; 2; 3 |]
    (Sweep.run ~domains:1 3 (fun i -> i + 1));
  Alcotest.(check (array int)) "more domains than scenarios" [| 0; 10 |]
    (Sweep.run ~domains:8 ~clamp:false 2 (fun i -> i * 10))

let test_sweep_map () =
  let a = [| "a"; "bb"; "ccc"; "dddd" |] in
  Alcotest.(check (array int)) "map over array" [| 1; 2; 3; 4 |]
    (Sweep.map ~domains:3 ~clamp:false a String.length)

exception Boom of int

let test_sweep_exception () =
  match Sweep.run ~domains:4 ~clamp:false 64 (fun i -> if i = 37 then raise (Boom i) else i) with
  | _ -> Alcotest.fail "expected the scenario exception to propagate"
  | exception Boom 37 -> ()
  | exception e ->
      Alcotest.failf "wrong exception propagated: %s" (Printexc.to_string e)

let test_sweep_default_domains () =
  Alcotest.(check bool) "at least one domain" true (Sweep.default_domains () >= 1)

(* ------------------------------------------------------------------ *)
(* Parallel vs sequential determinism on real simulations              *)
(* ------------------------------------------------------------------ *)

(* A self-contained scenario: all state (engine, fabric, RNG) is built
   inside the call from an index-derived seed, as the Sweep contract
   requires.  The digest captures everything downstream consumers read:
   the dispatch counter, the clock, collector traffic and task state. *)
let scenario_digest i =
  let seed = Rng.derive_seed 7 ~stream:i in
  let w =
    Farm.World.create ~seed ~spines:2 ~leaves:3 ~hosts_per_leaf:1 ()
  in
  (match Farm.World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "scenario %d: heavy-hitter deploy: %s" i m);
  Farm.World.background_traffic ~flows:(8 + (4 * i)) w;
  Farm.World.run ~until:0.3 w;
  let seeder = w.Farm.World.seeder in
  Printf.sprintf "i=%d seed=%d dispatched=%d now=%h collector=%h/%d utility=%h"
    i seed
    (Engine.dispatched w.Farm.World.engine)
    (Farm.World.now w)
    (Farm.Runtime.Seeder.collector_bytes seeder)
    (Farm.Runtime.Seeder.collector_messages seeder)
    (Farm.Runtime.Seeder.current_utility seeder)

let test_sweep_parallel_deterministic () =
  let n = 6 in
  let sequential = Sweep.run ~domains:1 n scenario_digest in
  let parallel = Sweep.run ~domains:4 ~clamp:false n scenario_digest in
  Alcotest.(check (array string))
    "parallel digests byte-identical to sequential" sequential parallel;
  (* and a second parallel run agrees with the first *)
  let parallel' = Sweep.run ~domains:4 ~clamp:false n scenario_digest in
  Alcotest.(check (array string)) "parallel rerun stable" parallel parallel'


(* ------------------------------------------------------------------ *)
(* Determinism with the full observability + overload stack armed      *)
(* ------------------------------------------------------------------ *)

(* A scenario running everything at once: trace sink attached and
   overload protection armed.  The digest covers the simulation state,
   the full Chrome-JSON trace stream and the metrics snapshot, so any
   domain-count dependence anywhere in that stack fails the property. *)
let armed_traced_digest base i =
  let seed = Rng.derive_seed base ~stream:i in
  let w =
    Farm.World.create ~seed ~spines:2 ~leaves:3 ~hosts_per_leaf:1
      ~seeder_config:Farm.Runtime.Seeder.overload_defaults ()
  in
  let tr = Trace.create () in
  Engine.set_tracer w.Farm.World.engine (Some tr);
  (match Farm.World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "scenario %d: heavy-hitter deploy: %s" i m);
  Farm.World.background_traffic ~flows:(8 + (4 * i)) w;
  Farm.World.run ~until:0.3 w;
  Printf.sprintf "i=%d dispatched=%d now=%h " i
    (Engine.dispatched w.Farm.World.engine)
    (Farm.World.now w)
  ^ Trace.to_chrome_json tr
  ^ Metrics.Registry.to_json (Engine.metrics w.Farm.World.engine)

let prop_sweep_armed_traced_invariant =
  QCheck2.Test.make
    ~name:"1/2/4-domain sweeps byte-identical (traced, overload armed)"
    ~count:3
    QCheck2.Gen.(int_range 1 10_000)
    (fun base ->
      let digests d =
        Sweep.run ~domains:d ~clamp:false 4 (armed_traced_digest base)
      in
      let d1 = digests 1 in
      d1 = digests 2 && d1 = digests 4)

(* Worker GC tuning must not leak: the calling domain's GC parameters
   are identical before and after a parallel sweep (the caller
   participates as a worker, so this exercises the snapshot/restore). *)
let test_sweep_gc_tune_no_leak () =
  let before = Gc.get () in
  let r =
    Sweep.run ~domains:4 ~clamp:false 16 (fun i ->
        (* allocate enough that workers actually exercise their heaps *)
        Array.length (Array.make (1024 * (1 + (i mod 4))) i))
  in
  Alcotest.(check int) "sweep ran" 16 (Array.length r);
  let after = Gc.get () in
  Alcotest.(check int)
    "minor_heap_size restored" before.Gc.minor_heap_size
    after.Gc.minor_heap_size;
  Alcotest.(check int)
    "space_overhead untouched" before.Gc.space_overhead
    after.Gc.space_overhead;
  (* and the escape hatch really skips tuning *)
  let before' = Gc.get () in
  ignore (Sweep.run ~domains:2 ~clamp:false ~gc_tune:false 4 (fun i -> i));
  let after' = Gc.get () in
  Alcotest.(check int)
    "gc_tune:false leaves minor heap alone" before'.Gc.minor_heap_size
    after'.Gc.minor_heap_size

let () =
  Alcotest.run "farm_sweep"
    [ ( "runner",
        [ Alcotest.test_case "indexed results" `Quick test_sweep_indexed;
          Alcotest.test_case "degenerate shapes" `Quick test_sweep_degenerate;
          Alcotest.test_case "map" `Quick test_sweep_map;
          Alcotest.test_case "exception propagation" `Quick
            test_sweep_exception;
          Alcotest.test_case "default domains" `Quick
            test_sweep_default_domains ] );
      ( "determinism",
        [ Alcotest.test_case "parallel = sequential" `Quick
            test_sweep_parallel_deterministic;
          QCheck_alcotest.to_alcotest prop_sweep_armed_traced_invariant ] );
      ( "gc",
        [ Alcotest.test_case "worker tuning does not leak" `Quick
            test_sweep_gc_tune_no_leak ] ) ]

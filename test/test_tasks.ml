(* Tests for the Table I task catalog: every entry must parse, type-check
   and analyze; the attack-detection tasks are exercised end-to-end with
   the matching synthetic workload. *)

module Catalog = Farm_tasks.Catalog
module Task_common = Farm_tasks.Task_common
module Engine = Farm_sim.Engine
module Rng = Farm_sim.Rng
module Topology = Farm_net.Topology
module Fabric = Farm_net.Fabric
module Traffic = Farm_net.Traffic
module Ipaddr = Farm_net.Ipaddr
module Filter = Farm_net.Filter
module Tcam = Farm_net.Tcam
module Switch_model = Farm_net.Switch_model
module Seeder = Farm_runtime.Seeder
module Soil = Farm_runtime.Soil
module Harvester = Farm_runtime.Harvester
module Value = Farm_almanac.Value

let topo () = Topology.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2

let test_catalog_size () =
  Alcotest.(check int) "17 Table I entries" 17 (List.length Catalog.all)

let test_catalog_compiles () =
  List.iter
    (fun (name, result) ->
      match result with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s does not compile: %s" name m)
    (Catalog.compile_all (topo ()))

let test_catalog_pretty_roundtrip () =
  (* every catalog program pretty-prints to source that re-parses to the
     same AST *)
  List.iter
    (fun (e : Task_common.entry) ->
      let p =
        try Farm_almanac.Parser.program e.source
        with Farm_almanac.Parser.Error m ->
          Alcotest.failf "%s: %s" e.name m
      in
      let printed = Farm_almanac.Pretty.program_to_string p in
      match Farm_almanac.Parser.program printed with
      | p' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" e.name)
            true
            (Farm_almanac.Ast.strip_pos p = Farm_almanac.Ast.strip_pos p')
      | exception Farm_almanac.Parser.Error m ->
          Alcotest.failf "%s: re-parse failed: %s" e.name m)
    Catalog.all

let test_hhh_inherited_deploys_both_machines () =
  (* the inherited-HHH task ships both the HH base machine and the HHH
     extension: both are instantiated *)
  let entry = Catalog.find "hierarchical-heavy-hitter-inherited" in
  let engine = Engine.create ~seed:21 () in
  let fabric = Fabric.create (topo ()) in
  let seeder = Seeder.create engine fabric in
  let task =
    match Seeder.deploy seeder (Task_common.to_task_spec entry) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy failed: %s" m
  in
  let machines =
    List.sort_uniq compare
      (List.map Farm_runtime.Seed_exec.machine_name
         (Seeder.seeds seeder task))
  in
  Alcotest.(check (list string)) "both machines placed" [ "HH"; "HHH" ]
    machines

let test_catalog_loc_reasonable () =
  List.iter
    (fun (e : Task_common.entry) ->
      let loc = Catalog.table1_loc e in
      Alcotest.(check bool)
        (Printf.sprintf "%s has sensible LoC (%d)" e.name loc)
        true
        (loc > 5 && loc < 200))
    Catalog.all;
  (* FloodDefender is the largest, as in the paper *)
  let fd = Catalog.table1_loc (Catalog.find "flood-defender") in
  List.iter
    (fun (e : Task_common.entry) ->
      Alcotest.(check bool) "flood-defender is largest" true
        (Catalog.table1_loc e <= fd))
    Catalog.all;
  (* the inherited HHH delta is much smaller than the standalone HH *)
  let inherited = Catalog.table1_loc (Catalog.find "hierarchical-heavy-hitter-inherited") in
  let hh = Catalog.table1_loc (Catalog.find "heavy-hitter") in
  Alcotest.(check bool)
    (Printf.sprintf "inheritance pays (%d < %d)" inherited hh)
    true (inherited < hh)

(* ------------------------------------------------------------------ *)
(* End-to-end scenarios                                                *)
(* ------------------------------------------------------------------ *)

let deploy_world ?(seed = 3) entry =
  let engine = Engine.create ~seed () in
  let fabric = Fabric.create (topo ()) in
  let seeder = Seeder.create engine fabric in
  let task =
    match Seeder.deploy seeder (Task_common.to_task_spec entry) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy %s failed: %s" entry.name m
  in
  (engine, fabric, seeder, task)

let rng_of engine = Rng.split (Engine.rng engine)

let any_rule_with seeder pred =
  List.exists
    (fun soil ->
      List.exists pred
        (Tcam.rules (Switch_model.tcam (Soil.switch soil)) Tcam.Monitoring))
    (Seeder.soils seeder)

let test_hh_end_to_end () =
  let entry = Catalog.find "heavy-hitter" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  (* light background + a 10 MB/s elephant from t=2 *)
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 20; mean_rate = 10_000. };
  let _hh = Traffic.heavy_hitter engine fabric rng ~at:2. ~rate:1e7 () in
  Engine.run ~until:4. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "hitters reported" true
    (Harvester.received_count h >= 1);
  (* reports arrive only after the elephant starts *)
  (match List.rev (Harvester.received h) with
  | (t0, _, Value.List _) :: _ ->
      Alcotest.(check bool) "first report after onset" true (t0 >= 2.)
  | _ -> Alcotest.fail "expected a hitters list");
  Alcotest.(check bool) "QoS reaction installed" true
    (any_rule_with seeder (fun r -> r.rule.action = Tcam.Set_qos 1))

let test_syn_flood_end_to_end () =
  let entry = Catalog.find "tcp-syn-flood" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.2.1.9" in
  Traffic.syn_flood engine fabric rng ~at:1. ~duration:6. ~victim
    ~rate_per_source:200_000. ~sources:30;
  Engine.run ~until:4. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "victim reported" true
    (List.exists
       (fun (_, _, v) ->
         match v with
         | Value.Str s -> s = Ipaddr.to_string victim
         | _ -> false)
       (Harvester.received h));
  Alcotest.(check bool) "rate limit installed" true
    (any_rule_with seeder (fun r ->
         match r.rule.action with Tcam.Rate_limit _ -> true | _ -> false))

let test_superspreader_end_to_end () =
  let entry = Catalog.find "superspreader" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  Traffic.superspreader engine fabric rng ~at:1. ~duration:5. ~fanout:60;
  Engine.run ~until:5. engine;
  Alcotest.(check bool) "spreader reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1);
  Alcotest.(check bool) "spreader throttled" true
    (any_rule_with seeder (fun r ->
         match r.rule.action with Tcam.Rate_limit _ -> true | _ -> false))

let test_port_scan_end_to_end () =
  let entry = Catalog.find "port-scan" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.3.1.4" in
  Traffic.port_scan engine fabric rng ~at:1. ~duration:5. ~victim ~ports:50;
  Engine.run ~until:5. engine;
  Alcotest.(check bool) "scanner reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1);
  Alcotest.(check bool) "scanner dropped" true
    (any_rule_with seeder (fun r -> r.rule.action = Tcam.Drop))

let test_dns_reflection_end_to_end () =
  let entry = Catalog.find "dns-reflection" in
  let engine, fabric, _seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.1.2.5" in
  Traffic.dns_reflection engine fabric rng ~at:1. ~duration:5. ~victim
    ~reflectors:20 ~rate_per_reflector:500_000.;
  Engine.run ~until:5. engine;
  Alcotest.(check bool) "victim reported" true
    (List.exists
       (fun (_, _, v) ->
         match v with
         | Value.Str s -> s = Ipaddr.to_string victim
         | _ -> false)
       (Harvester.received (Seeder.harvester task)))

let test_ssh_brute_force_end_to_end () =
  let entry = Catalog.find "ssh-brute-force" in
  let engine, fabric, _seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.2.2.8" in
  Traffic.ssh_brute_force engine fabric rng ~at:1. ~duration:6. ~victim
    ~attempts_per_sec:40.;
  Engine.run ~until:6. engine;
  Alcotest.(check bool) "attacker reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1)

let test_slowloris_end_to_end () =
  let entry = Catalog.find "slowloris" in
  let engine, fabric, _seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.1.1.3" in
  Traffic.slowloris engine fabric rng ~at:1. ~duration:8. ~victim
    ~connections:60;
  Engine.run ~until:8. engine;
  Alcotest.(check bool) "slowloris reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1)

let test_ddos_end_to_end () =
  let entry = Catalog.find "ddos" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  (* the protected prefix is 10.2.0.0/16 (leaf1's hosts) *)
  let victim = Ipaddr.of_string "10.2.1.44" in
  Traffic.syn_flood engine fabric rng ~at:1. ~duration:6. ~victim
    ~rate_per_source:100_000. ~sources:120;
  Engine.run ~until:4. engine;
  Alcotest.(check bool) "flood reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1);
  Alcotest.(check bool) "protected prefix quenched" true
    (any_rule_with seeder (fun r -> r.rule.action = Tcam.Drop));
  (* the drop rule actually reduces traffic at the mitigating switch *)
  ignore fabric

let test_link_failure_end_to_end () =
  let entry = Catalog.find "link-failure" in
  let engine, fabric, seeder, task = deploy_world entry in
  (* a steady flow that dies at t=2: its egress ports stall *)
  let tuple =
    { Farm_net.Flow.src = Ipaddr.of_string "10.1.1.7";
      dst = Ipaddr.of_string "10.3.1.7"; sport = 99; dport = 99;
      proto = Farm_net.Flow.Tcp }
  in
  let id = Option.get (Fabric.start_flow fabric ~time:0. ~tuple ~rate:1e6 ()) in
  Engine.schedule engine ~delay:2. (fun engine ->
      Fabric.stop_flow fabric ~time:(Engine.now engine) id);
  Engine.run ~until:4. engine;
  ignore seeder;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "failure reported" true
    (Harvester.received_count h >= 1);
  (* reported only after the flow stops *)
  match List.rev (Harvester.received h) with
  | (t0, _, _) :: _ -> Alcotest.(check bool) "after stall" true (t0 >= 2.)
  | [] -> Alcotest.fail "no report"

let test_traffic_change_end_to_end () =
  let entry = Catalog.find "traffic-change" in
  let engine, fabric, seeder, task = deploy_world entry in
  ignore seeder;
  (* steady 100 kB/s, then a 40x surge at t=5 *)
  let tuple =
    { Farm_net.Flow.src = Ipaddr.of_string "10.1.1.7";
      dst = Ipaddr.of_string "10.3.1.7"; sport = 5; dport = 5;
      proto = Farm_net.Flow.Udp }
  in
  let _ = Fabric.start_flow fabric ~time:0. ~tuple ~rate:100_000. () in
  Engine.schedule engine ~delay:5. (fun engine ->
      let tuple2 = { tuple with sport = 6 } in
      ignore
        (Fabric.start_flow fabric ~time:(Engine.now engine) ~tuple:tuple2
           ~rate:4e6 ()));
  Engine.run ~until:8. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "change reported" true (Harvester.received_count h >= 1);
  match List.rev (Harvester.received h) with
  | (t0, _, _) :: _ ->
      Alcotest.(check bool) "reported after the surge" true (t0 >= 5.)
  | [] -> Alcotest.fail "no report"

let test_flow_size_distribution_reports () =
  let entry = Catalog.find "flow-size-distribution" in
  let engine, fabric, seeder, task = deploy_world entry in
  ignore seeder;
  let rng = rng_of engine in
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 30 };
  Engine.run ~until:5. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "histograms streamed" true
    (Harvester.received_count h >= 2);
  match Harvester.received h with
  | (_, _, Value.List buckets) :: _ ->
      Alcotest.(check int) "4 buckets" 4 (List.length buckets)
  | _ -> Alcotest.fail "expected histogram lists"

let test_entropy_reports () =
  let entry = Catalog.find "entropy-estimation" in
  let engine, fabric, seeder, task = deploy_world entry in
  ignore seeder;
  let rng = rng_of engine in
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 30 };
  Engine.run ~until:4. engine;
  let h = Seeder.harvester task in
  Alcotest.(check bool) "entropy streamed" true (Harvester.received_count h >= 1);
  List.iter
    (fun (_, _, v) ->
      match v with
      | Value.Num e ->
          Alcotest.(check bool) "entropy non-negative" true (e >= 0.)
      | _ -> Alcotest.fail "expected numbers")
    (Harvester.received h)

let test_flood_defender_lifecycle () =
  let entry = Catalog.find "flood-defender" in
  let engine, fabric, seeder, task = deploy_world entry in
  let rng = rng_of engine in
  let victim = Ipaddr.of_string "10.2.1.9" in
  Traffic.syn_flood engine fabric rng ~at:1. ~duration:3. ~victim
    ~rate_per_source:300_000. ~sources:50;
  Engine.run ~until:3. engine;
  (* during the attack at least one seed is defending/monitoring *)
  let states =
    List.map Farm_runtime.Seed_exec.state (Seeder.seeds seeder task)
  in
  Alcotest.(check bool) "some seed left observe" true
    (List.exists (fun s -> s <> "observe") states);
  Alcotest.(check bool) "attackers reported" true
    (Harvester.received_count (Seeder.harvester task) >= 1);
  (* after the flood ends, seeds recover to observe and clean their rules *)
  Engine.run ~until:12. engine;
  let states =
    List.map Farm_runtime.Seed_exec.state (Seeder.seeds seeder task)
  in
  Alcotest.(check bool) "all seeds recovered" true
    (List.for_all (fun s -> s = "observe") states);
  Alcotest.(check bool) "recovery reported" true
    (List.exists
       (fun (_, _, v) -> v = Value.Str "recovered")
       (Harvester.received (Seeder.harvester task)))

let test_ml_task_burns_cpu () =
  let entry = Farm_tasks.Infra_tasks.ml_task ~iterations:10 ~accuracy:0.01 in
  let engine, fabric, seeder, task = deploy_world entry in
  ignore fabric;
  ignore task;
  Engine.run ~until:2. engine;
  (* each seed polls at 100 Hz and burns 700 us per activation *)
  let total_busy =
    List.fold_left
      (fun acc soil -> acc +. Farm_runtime.Cpu_model.busy_seconds (Soil.cpu soil))
      0. (Seeder.soils seeder)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ML work accounted (%.3fs busy)" total_busy)
    true (total_busy > 0.5)

let test_multiple_tasks_coexist () =
  (* the core FARM claim: several tasks share the fabric, polls aggregate *)
  let engine = Engine.create ~seed:5 () in
  let fabric = Fabric.create (topo ()) in
  let seeder = Seeder.create engine fabric in
  let deploy name =
    match Seeder.deploy seeder (Task_common.to_task_spec (Catalog.find name)) with
    | Ok t -> t
    | Error m -> Alcotest.failf "deploy %s failed: %s" name m
  in
  let _hh = deploy "heavy-hitter" in
  let _tc = deploy "traffic-change" in
  let _lf = deploy "link-failure" in
  let rng = rng_of engine in
  Traffic.background engine fabric rng
    { Traffic.default_profile with concurrent_flows = 20 };
  Engine.run ~until:2. engine;
  (* all three tasks poll [port ANY]: aggregation means each soil issues
     one ASIC poll stream, not three *)
  List.iter
    (fun soil ->
      let stats = Soil.poll_stats soil in
      Alcotest.(check bool) "deliveries exceed ASIC polls (sharing)" true
        (stats.completed > stats.asic_polls))
    (Seeder.soils seeder)

let () =
  Alcotest.run "farm_tasks"
    [ ( "catalog",
        [ Alcotest.test_case "size" `Quick test_catalog_size;
          Alcotest.test_case "all compile" `Quick test_catalog_compiles;
          Alcotest.test_case "pretty round-trip" `Quick
            test_catalog_pretty_roundtrip;
          Alcotest.test_case "inherited HHH deploys both" `Quick
            test_hhh_inherited_deploys_both_machines;
          Alcotest.test_case "LoC sane" `Quick test_catalog_loc_reasonable ] );
      ( "end-to-end",
        [ Alcotest.test_case "heavy hitter" `Quick test_hh_end_to_end;
          Alcotest.test_case "syn flood" `Quick test_syn_flood_end_to_end;
          Alcotest.test_case "superspreader" `Quick
            test_superspreader_end_to_end;
          Alcotest.test_case "port scan" `Quick test_port_scan_end_to_end;
          Alcotest.test_case "dns reflection" `Quick
            test_dns_reflection_end_to_end;
          Alcotest.test_case "ssh brute force" `Quick
            test_ssh_brute_force_end_to_end;
          Alcotest.test_case "slowloris" `Quick test_slowloris_end_to_end;
          Alcotest.test_case "ddos" `Quick test_ddos_end_to_end;
          Alcotest.test_case "link failure" `Quick
            test_link_failure_end_to_end;
          Alcotest.test_case "traffic change" `Quick
            test_traffic_change_end_to_end;
          Alcotest.test_case "flow size distribution" `Quick
            test_flow_size_distribution_reports;
          Alcotest.test_case "entropy" `Quick test_entropy_reports;
          Alcotest.test_case "flood defender lifecycle" `Quick
            test_flood_defender_lifecycle;
          Alcotest.test_case "ml task cpu" `Quick test_ml_task_burns_cpu;
          Alcotest.test_case "multi-task aggregation" `Quick
            test_multiple_tasks_coexist ] ) ]

(* Tests for the observability layer (ISSUE 7): the Trace sink — ring
   buffer flight-recorder semantics and Chrome trace_event encoding —
   the named-metric Registry, and the determinism contract the tracing
   architecture promises: traced event streams byte-identical across
   in-process replays and across sweep domain counts, and tracing being
   observationally inert (attaching a sink must not change simulation
   outcomes). *)

open Farm_sim

(* ------------------------------------------------------------------ *)
(* Trace sink mechanics                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_unbounded () =
  let t = Trace.create () in
  (* push past the initial capacity to exercise growth *)
  for i = 0 to 2999 do
    Trace.instant t ~ts:(float_of_int i) ~cat:"c" ~name:"e"
      ~args:[ ("i", Trace.I i) ] ()
  done;
  Alcotest.(check int) "count" 3000 (Trace.count t);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t);
  let evs = Trace.events t in
  Alcotest.(check int) "events length" 3000 (List.length evs);
  Alcotest.(check (float 0.)) "oldest first" 0. (List.hd evs).Trace.ts;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.count t)

let test_trace_ring_overwrites_oldest () =
  let t = Trace.create ~ring:4 () in
  for i = 1 to 10 do
    Trace.instant t ~ts:(float_of_int i) ~cat:"c" ~name:(string_of_int i) ()
  done;
  Alcotest.(check int) "holds ring size" 4 (Trace.count t);
  Alcotest.(check int) "overwritten counted" 6 (Trace.dropped t);
  Alcotest.(check (list string))
    "last n survive, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.name) (Trace.events t))

let test_trace_chrome_json () =
  let t = Trace.create () in
  Trace.span t ~ts:1.5 ~dur:0.25 ~cat:"soil.pcie" ~name:"transfer" ~tid:3
    ~args:[ ("bytes", Trace.F 128.) ]
    ();
  Trace.instant t ~ts:2. ~cat:"engine" ~name:"weird \"name\"\n"
    ~args:[ ("s", Trace.S "a\tb"); ("i", Trace.I (-7)) ]
    ();
  Trace.counter t ~ts:3. ~cat:"m" ~name:"depth" ~value:42. ();
  let j = Trace.to_chrome_json t in
  let has needle =
    let nl = String.length needle and jl = String.length j in
    let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "envelope" true
    (String.length j > 20 && String.sub j 0 15 = {|{"traceEvents":|});
  (* fixed-point microsecond timestamps: 1.5 s -> 1500000.000 *)
  Alcotest.(check bool) "ts in fixed us" true (has {|"ts":1500000.000|});
  Alcotest.(check bool) "span phase + dur" true
    (has {|"ph":"X"|} && has {|"dur":250000.000|});
  Alcotest.(check bool) "instant phase" true (has {|"ph":"i"|});
  Alcotest.(check bool) "counter phase" true
    (has {|"ph":"C"|} && has {|"value":42|});
  Alcotest.(check bool) "strings escaped" true
    (has {|weird \"name\"\n|} && has {|a\tb|});
  Alcotest.(check bool) "tid carried" true (has {|"tid":3|})

(* ------------------------------------------------------------------ *)
(* Metric registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry_register_or_get () =
  let r = Metrics.Registry.create () in
  let c1 = Metrics.Registry.counter r "a.b" in
  let c2 = Metrics.Registry.counter r "a.b" in
  Metrics.Counter.incr c1;
  Alcotest.(check (float 0.)) "same instance" 1. (Metrics.Counter.value c2);
  Alcotest.(check (option (float 0.))) "value by name" (Some 1.)
    (Metrics.Registry.value r "a.b")

let test_registry_kind_clash () =
  let r = Metrics.Registry.create () in
  ignore (Metrics.Registry.counter r "x");
  (match Metrics.Registry.gauge r "x" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ());
  match Metrics.Registry.histogram r "x" with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ()

let test_registry_gauge_fn_replaces () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.gauge_fn r "g" (fun () -> 1.);
  Metrics.Registry.gauge_fn r "g" (fun () -> 2.);
  Alcotest.(check (option (float 0.))) "newest owner wins" (Some 2.)
    (Metrics.Registry.value r "g")

let test_registry_snapshot_deterministic () =
  (* same metrics registered in different orders -> identical JSON *)
  let build names =
    let r = Metrics.Registry.create () in
    List.iter
      (fun n ->
        match n with
        | "h" ->
            let h = Metrics.Registry.histogram r "h" in
            List.iter (Metrics.Histogram.record h) [ 1.; 2.; 3. ]
        | "empty_h" -> ignore (Metrics.Registry.histogram r "empty_h")
        | n -> Metrics.Counter.add (Metrics.Registry.counter r n) 5.)
      names;
    Metrics.Registry.to_json r
  in
  let j1 = build [ "b"; "h"; "a"; "empty_h" ]
  and j2 = build [ "empty_h"; "a"; "b"; "h" ] in
  Alcotest.(check string) "order-independent snapshot" j1 j2;
  Alcotest.(check (list string))
    "names sorted"
    [ "a"; "b"; "empty_h"; "h" ]
    (let r = Metrics.Registry.create () in
     ignore (Metrics.Registry.counter r "b");
     ignore (Metrics.Registry.counter r "a");
     ignore (Metrics.Registry.histogram r "h");
     ignore (Metrics.Registry.histogram r "empty_h");
     Metrics.Registry.names r)

(* ------------------------------------------------------------------ *)
(* Determinism of traced runs                                          *)
(* ------------------------------------------------------------------ *)

(* A self-contained traced scenario, all state derived from [seed] (the
   Sweep contract).  Returns the full observable surface: the Chrome
   JSON of every traced event plus the metrics snapshot. *)
let traced_digest ?(trace = true) seed =
  let w = Farm.World.create ~seed ~spines:2 ~leaves:3 ~hosts_per_leaf:1 () in
  let tr = Trace.create () in
  if trace then Engine.set_tracer w.Farm.World.engine (Some tr);
  (match Farm.World.deploy_catalog_task w "heavy-hitter" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "heavy-hitter deploy: %s" m);
  Farm.World.background_traffic ~flows:20 w;
  Farm.World.run ~until:0.3 w;
  ( Trace.to_chrome_json tr,
    Metrics.Registry.to_json (Engine.metrics w.Farm.World.engine) )

let prop_trace_replay_identical =
  QCheck2.Test.make ~name:"traced stream byte-identical across replays"
    ~count:4
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let j1, m1 = traced_digest seed in
      let j2, m2 = traced_digest seed in
      String.equal j1 j2 && String.equal m1 m2
      && String.length j1 > 100 (* the trace must not be trivially empty *))

let test_trace_domain_invariant () =
  let sweep domains =
    Sweep.run ~domains ~clamp:false 4 (fun i ->
        let j, m = traced_digest (Rng.derive_seed 7 ~stream:i) in
        j ^ m)
  in
  Alcotest.(check (array string))
    "1 domain vs 4 domains" (sweep 1) (sweep 4)

let test_tracing_is_inert () =
  (* attaching a sink must not perturb the simulation: the metrics
     snapshot (soil counters, seeder gauges, harvester accounting) is
     identical with tracing on and off *)
  let _, m_on = traced_digest ~trace:true 99 in
  let _, m_off = traced_digest ~trace:false 99 in
  Alcotest.(check string) "metrics unchanged by tracing" m_on m_off

let () =
  Alcotest.run "farm_trace"
    [ ( "sink",
        [ Alcotest.test_case "unbounded append" `Quick test_trace_unbounded;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_trace_ring_overwrites_oldest;
          Alcotest.test_case "chrome JSON encoding" `Quick
            test_trace_chrome_json ] );
      ( "registry",
        [ Alcotest.test_case "register-or-get" `Quick
            test_registry_register_or_get;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
          Alcotest.test_case "gauge_fn replaces" `Quick
            test_registry_gauge_fn_replaces;
          Alcotest.test_case "deterministic snapshot" `Quick
            test_registry_snapshot_deterministic ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_trace_replay_identical;
          Alcotest.test_case "sweep domain invariance" `Slow
            test_trace_domain_invariant;
          Alcotest.test_case "tracing is inert" `Quick test_tracing_is_inert ]
      ) ]

(* Symbolic-verification tests: the catalog and example corpus verifies
   clean (0 V401), hand-mutated compile plans are caught as V401 with a
   witness path, the V4xx fixture corpus triggers each new code, the
   reach-backed lint verdicts beat the syntactic heuristics, and the
   qcheck symbolic-vs-concrete soundness property. *)

module Ast = Farm_almanac.Ast
module Parser = Farm_almanac.Parser
module Typecheck = Farm_almanac.Typecheck
module Compile = Farm_almanac.Compile
module Interp = Farm_almanac.Interp
module Symexec = Farm_almanac.Symexec
module Equiv = Farm_almanac.Equiv
module Reach = Farm_almanac.Reach
module Lint = Farm_almanac.Lint
module Diagnostic = Farm_almanac.Diagnostic
module Value = Farm_almanac.Value
module Host = Farm_almanac.Host
module Flow = Farm_net.Flow
module Task_common = Farm_tasks.Task_common
module Catalog = Farm_tasks.Catalog

let show ds = String.concat "\n" (List.map Diagnostic.to_string ds)
let codes ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

let load ?extra source =
  match Parser.program_result source with
  | Error d -> Alcotest.failf "parse error: %s" (Diagnostic.to_string d)
  | Ok parsed -> (
      match Typecheck.check_diags ?extra parsed with
      | Ok p -> p
      | Error ds -> Alcotest.failf "typecheck failed:\n%s" (show ds))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the full farmc-verify pipeline over one type-checked program *)
let verify_all ?budget ?(host_builtins = []) (p : Ast.program) =
  let host_builtins = Equiv.default_host_builtins @ host_builtins in
  let equiv = Equiv.verify_program ?budget ~host_builtins ~program:p () in
  let reach = Reach.analyze_program ?budget ~host_builtins ~program:p () in
  let reach_diags =
    List.concat_map (fun (r : Reach.result) -> r.diags) reach
  in
  let lint =
    List.filter
      (fun (d : Diagnostic.t) ->
        match d.code with "L101" | "L102" | "L107" -> true | _ -> false)
      (Lint.check_program ~reach p)
  in
  Diagnostic.sort (equiv @ reach_diags @ lint)

(* ------------------------------------------------------------------ *)
(* Catalog + examples verify clean                                     *)
(* ------------------------------------------------------------------ *)

let test_catalog_clean () =
  Alcotest.(check bool) "catalog nonempty" true (List.length Catalog.all > 10);
  List.iter
    (fun (e : Task_common.entry) ->
      let p = load ~extra:e.extra_sigs e.source in
      let ds = verify_all ~host_builtins:(List.map fst e.builtins) p in
      if ds <> [] then
        Alcotest.failf "catalog task %s not verify-clean:\n%s" e.name
          (show ds))
    Catalog.all

let example_files () =
  Sys.readdir "../examples" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".alm")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat "../examples" f)

let test_examples_clean () =
  let files = example_files () in
  Alcotest.(check bool) "examples nonempty" true (files <> []);
  List.iter
    (fun f ->
      let p = load (read_file f) in
      let ds = verify_all p in
      if ds <> [] then
        Alcotest.failf "example %s not verify-clean:\n%s" f (show ds))
    files

(* ------------------------------------------------------------------ *)
(* V401: hand-mutated compile plans are caught                         *)
(* ------------------------------------------------------------------ *)

let small_source =
  {|
machine Small {
  place all;
  time tick = Time { .ival = 1 };
  long a = 1;
  long b = 0;
  state run {
    when (tick as t) do {
      if (t > 3) then { b = b + a; } else { b = b - 1; }
    }
  }
}
|}

let small_plan () =
  let p = load small_source in
  let m = List.hd p.machines in
  let c = Compile.compile ~program:p ~machine:m.Ast.mname in
  (p, m, c.Compile.c_plan)

let assert_v401 what ds =
  match List.filter (fun (d : Diagnostic.t) -> d.code = "V401") ds with
  | [] -> Alcotest.failf "%s: mutation not caught:\n%s" what (show ds)
  | d :: _ ->
      Alcotest.(check bool)
        (what ^ " is an error") true
        (Diagnostic.is_error d)

let test_mutated_global_init () =
  let p, m, plan = small_plan () in
  (* verifies clean before the mutation *)
  let clean =
    Equiv.verify_plan ~funcs:p.Ast.funcs ~machine:m ~plan ()
  in
  Alcotest.(check (list string)) "pristine plan clean" [] (codes clean);
  let plan =
    { plan with
      Compile.v_global_inits =
        List.map
          (fun (slot, name, ext, init) ->
            if name = "b" then (slot, name, ext, Compile.Vexpr (Ast.Int 7))
            else (slot, name, ext, init))
          plan.Compile.v_global_inits }
  in
  let ds = Equiv.verify_plan ~funcs:p.Ast.funcs ~machine:m ~plan () in
  assert_v401 "corrupted global initializer" ds

let mutate_tick_events plan f =
  { plan with
    Compile.v_states =
      List.map
        (fun (vs : Compile.vstate) ->
          { vs with
            Compile.vs_triggers =
              List.map
                (fun (name, evs) ->
                  if name = "tick" then (name, f evs) else (name, evs))
                vs.Compile.vs_triggers })
        plan.Compile.v_states }

let test_mutated_binding_slot () =
  let p, m, plan = small_plan () in
  (* point the trigger binding at a slot the frame never fills, so the
     compiled side reads the absent sentinel where the interpreter sees
     the payload — the PR7 bug class *)
  let plan =
    mutate_tick_events plan
      (List.map (fun (ev : Compile.vevent) ->
           match ev.Compile.ve_binding with
           | Some (n, slot) ->
               { ev with Compile.ve_binding = Some (n, slot + 7) }
           | None -> ev))
  in
  let ds = Equiv.verify_plan ~funcs:p.Ast.funcs ~machine:m ~plan () in
  assert_v401 "corrupted binding slot" ds;
  (* the witness names the diverging path *)
  let d = List.find (fun (d : Diagnostic.t) -> d.code = "V401") ds in
  Alcotest.(check bool)
    "carries a witness path" true
    (let msg = d.Diagnostic.message in
     let has sub =
       let n = String.length sub and ln = String.length msg in
       let rec go i = i + n <= ln && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     has "path [")

let test_dropped_dispatch_event () =
  let p, m, plan = small_plan () in
  let plan = mutate_tick_events plan (fun _ -> []) in
  let ds = Equiv.verify_plan ~funcs:p.Ast.funcs ~machine:m ~plan () in
  assert_v401 "dropped dispatch event" ds

(* ------------------------------------------------------------------ *)
(* V4xx fixture corpus                                                 *)
(* ------------------------------------------------------------------ *)

let fixture name = load (read_file (Filename.concat "lint_fixtures" name))

let test_v402_path_budget () =
  let p = fixture "v402_path_budget.alm" in
  let ds = Equiv.verify_program ~program:p () in
  (match List.filter (fun (d : Diagnostic.t) -> d.code = "V402") ds with
  | [] -> Alcotest.failf "no V402 on symbolic loop:\n%s" (show ds)
  | d :: _ ->
      Alcotest.(check bool) "V402 is a warning" false (Diagnostic.is_error d);
      Alcotest.(check bool)
        "V402 names the budget knob" true
        (let msg = d.Diagnostic.message in
         let n = String.length "--max-paths" in
         let rec go i =
           i + n <= String.length msg
           && (String.sub msg i n = "--max-paths" || go (i + 1))
         in
         go 0));
  (* incomplete exploration must withhold precise reach claims *)
  List.iter
    (fun (r : Reach.result) ->
      Alcotest.(check bool) "reach marked incomplete" false r.complete)
    (Reach.analyze_program ~program:p ())

let test_v403_invariant () =
  let p = fixture "v403_invariant.alm" in
  let rs = Reach.analyze_program ~program:p () in
  let ds = List.concat_map (fun (r : Reach.result) -> r.diags) rs in
  match List.filter (fun (d : Diagnostic.t) -> d.code = "V403") ds with
  | [] -> Alcotest.failf "no V403 on failing assert:\n%s" (show ds)
  | d :: _ ->
      Alcotest.(check bool) "V403 is an error" true (Diagnostic.is_error d);
      Alcotest.(check bool)
        "V403 carries a witness" true
        (let msg = d.Diagnostic.message in
         let n = String.length "witness" in
         let rec go i =
           i + n <= String.length msg
           && (String.sub msg i n = "witness" || go (i + 1))
         in
         go 0)

let test_v404_index_oob () =
  let p = fixture "v404_index_oob.alm" in
  let rs = Reach.analyze_program ~program:p () in
  let ds = List.concat_map (fun (r : Reach.result) -> r.diags) rs in
  match List.filter (fun (d : Diagnostic.t) -> d.code = "V404") ds with
  | [] -> Alcotest.failf "no V404 on unconstrained index:\n%s" (show ds)
  | d :: _ ->
      Alcotest.(check bool) "V404 is a warning" false (Diagnostic.is_error d)

(* the fixtures still translate correctly: no V401 anywhere *)
let test_fixtures_no_divergence () =
  List.iter
    (fun name ->
      let p = fixture name in
      let ds = Equiv.verify_program ~program:p () in
      match List.filter (fun (d : Diagnostic.t) -> d.code = "V401") ds with
      | [] -> ()
      | bad -> Alcotest.failf "%s has V401:\n%s" name (show bad))
    [ "v402_path_budget.alm"; "v403_invariant.alm"; "v404_index_oob.alm" ]

(* ------------------------------------------------------------------ *)
(* Reach-backed lint beats the syntactic heuristics                    *)
(* ------------------------------------------------------------------ *)

(* [k] is constant 1, so the guarded transit to [b] can never fire: the
   syntactic DFS believes [b] reachable, the reach analysis proves it
   is not (and the transit dead). *)
let precise_source =
  {|
machine Precise {
  place all;
  time tick = Time { .ival = 1 };
  long k = 1;
  long n = 0;
  state a {
    when (tick as t) do {
      n = n + 1;
      if (k > 2) then { transit b; }
    }
  }
  state b {
    when (tick as t) do { n = 0; }
  }
}
|}

let test_reach_upgrades_lint () =
  let p = load precise_source in
  let m = List.hd p.machines in
  (* heuristic verdict: everything fine *)
  let syntactic = Lint.check_machine m in
  Alcotest.(check (list string)) "syntactic lint blind" [] (codes syntactic);
  (* reach verdict: b unreachable, its transit dead *)
  let r = Reach.analyze ~funcs:p.Ast.funcs ~machine:m () in
  Alcotest.(check bool) "analysis complete" true r.Reach.complete;
  Alcotest.(check (list string)) "only a reachable" [ "a" ] r.Reach.reachable;
  Alcotest.(check bool) "no livelock" true (r.Reach.livelock = None);
  let ds = Lint.check_machine ~reach:r m in
  Alcotest.(check (list string))
    "reach-backed verdicts" [ "L101"; "L102" ]
    (List.sort compare (codes ds));
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check bool) "positioned" true (d.pos <> Ast.no_pos))
    ds

(* A guaranteed (but conditional-looking) enter-transit cycle the
   syntactic L107 misses: both branches forward. *)
let sneaky_livelock_source =
  {|
machine Sneaky {
  place all;
  time tick = Time { .ival = 1 };
  long n = 0;
  state a {
    when (enter) do {
      if (n > 0) then { transit b; } else { transit b; }
    }
    when (tick as t) do { n = n + 1; }
  }
  state b {
    when (enter) do { transit a; }
    when (tick as t) do { n = 0; }
  }
}
|}

let test_reach_livelock () =
  let p = load sneaky_livelock_source in
  let m = List.hd p.machines in
  let syntactic = Lint.check_machine m in
  Alcotest.(check bool)
    "syntactic L107 blind to branch forwarding" false
    (List.mem "L107" (codes syntactic));
  let r = Reach.analyze ~funcs:p.Ast.funcs ~machine:m () in
  (match r.Reach.livelock with
  | Some _ -> ()
  | None -> Alcotest.fail "reach missed the guaranteed forwarding cycle");
  let ds = Lint.check_machine ~reach:r m in
  Alcotest.(check bool) "reach-backed L107" true (List.mem "L107" (codes ds));
  Alcotest.(check bool)
    "L107 is an error" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.code = "L107" && Diagnostic.is_error d)
       ds)

(* An incomplete reach result must fall back to the heuristics. *)
let test_incomplete_reach_falls_back () =
  let p = load precise_source in
  let m = List.hd p.machines in
  let r = Reach.analyze ~funcs:p.Ast.funcs ~machine:m () in
  let fake = { r with Reach.complete = false } in
  Alcotest.(check (list string))
    "incomplete reach ignored" (codes (Lint.check_machine m))
    (codes (Lint.check_machine ~reach:fake m))

(* ------------------------------------------------------------------ *)
(* qcheck: symbolic paths partition concrete executions                *)
(* ------------------------------------------------------------------ *)

(* For a random catalog machine, a random trigger and random concrete
   inputs: exactly one symbolic path condition is satisfied by the
   input, and that path predicts the interpreter's store, effects and
   transit. *)

let mk_packet round =
  let tuple =
    { Flow.src =
        Farm_net.Ipaddr.of_string
          (Printf.sprintf "10.0.%d.%d" (round mod 4) ((round mod 7) + 1));
      dst = Farm_net.Ipaddr.of_string "10.1.0.1";
      sport = 1000 + (round * 13);
      dport = (match round mod 3 with 0 -> 22 | 1 -> 53 | _ -> 80);
      proto = (if round mod 5 = 4 then Flow.Udp else Flow.Tcp) }
  in
  let flags =
    match round mod 3 with
    | 0 -> Flow.syn_only
    | 1 -> Flow.syn_ack
    | _ -> Flow.no_flags
  in
  Flow.packet ~flags ~payload:"q0.attack.example.com" tuple
    (200 + (100 * round))

let trig_value (tt : Ast.trigger_type) ~round =
  match tt with
  | Ast.Poll ->
      Value.Stats
        (Array.init 16 (fun i ->
             if round = 0 then 0.
             else float_of_int (((round * 271) + (i * 157)) mod 2000)))
  | Ast.Probe -> Value.Packet (mk_packet round)
  | Ast.Time -> Value.Num (float_of_int round *. 0.5)

let target_str = function
  | Host.To_harvester -> "harvester"
  | Host.To_machine (m, None) -> m
  | Host.To_machine (m, Some d) -> Printf.sprintf "%s@%d" m d

let qcases =
  lazy
    (List.concat_map
       (fun (e : Task_common.entry) ->
         let p = load ~extra:e.extra_sigs e.source in
         List.filter_map
           (fun (m : Ast.machine) ->
             if m.Ast.states = [] || m.Ast.mtrigs = [] then None
             else Some (e, p, m))
           p.machines)
       Catalog.all)

let full_checks = ref 0

(* returns [true]; reports failures through QCheck2.Test.fail_reportf *)
let episode ~case ~round ~warmup =
  let cases = Lazy.force qcases in
  let (e : Task_common.entry), program, m =
    List.nth cases (case mod List.length cases)
  in
  let stubs =
    List.map
      (fun n -> (n, fun (_ : Value.t list) -> Value.Unit))
      Equiv.default_host_builtins
    @ [ ("self_switch", fun _ -> Value.Num 0.) ]
    @ e.builtins
  in
  let log = ref [] in
  let host =
    { Host.null_host with
      Host.h_send =
        (fun target v ->
          log :=
            Printf.sprintf "send:%s:%s" (target_str target)
              (Value.to_string v)
            :: !log);
      h_set_trigger =
        (fun name _ v ->
          log :=
            Printf.sprintf "settrig:%s:%s" name (Value.to_string v) :: !log);
      h_builtin = (fun name -> List.assoc_opt name stubs);
      h_on_transit =
        (fun a b -> log := Printf.sprintf "transit:%s->%s" a b :: !log);
      h_log = (fun msg -> log := ("log:" ^ msg) :: !log) }
  in
  let externals =
    Option.value ~default:[] (List.assoc_opt m.Ast.mname e.externals)
  in
  let t = Interp.create ~externals ~program ~machine:m.Ast.mname host in
  Interp.start t;
  (* shake the instance off its initial store *)
  for i = 1 to warmup do
    List.iter
      (fun (td : Ast.trig_decl) ->
        try Interp.fire_trigger t td.Ast.tname (trig_value td.ttyp ~round:i)
        with Interp.Runtime_error _ -> ())
      m.Ast.mtrigs
  done;
  let td = List.nth m.Ast.mtrigs (round mod List.length m.Ast.mtrigs) in
  let pre_state = Interp.current_state t in
  let st =
    List.find (fun (s : Ast.state_decl) -> s.sname = pre_state) m.Ast.states
  in
  let gnames =
    List.map (fun (v : Ast.var_decl) -> v.vname) m.Ast.mvars
    @ List.map (fun (tr : Ast.trig_decl) -> tr.tname) m.Ast.mtrigs
  in
  let lnames = List.map (fun (v : Ast.var_decl) -> v.vname) st.Ast.slocals in
  if List.exists (fun n -> List.mem n gnames) lnames then true
  else begin
    let key = "var:" ^ td.Ast.tname in
    let matches (ev : Ast.event) = Interp.trigger_key ev.trigger = key in
    let events =
      match List.filter matches st.Ast.sevents with
      | [] -> List.filter matches m.Ast.mevents
      | evs -> evs
    in
    if events = [] then true
    else begin
      let conc n =
        (n, Symexec.Con (Option.value ~default:Value.Unit (Interp.var t n)))
      in
      let store =
        Symexec.mk_istore ~globals:(List.map conc gnames)
          ~locals:(List.map conc lnames)
      in
      let input = Symexec.Svar ("input", None) in
      let eus =
        List.map
          (fun (ev : Ast.event) ->
            { Symexec.eu_body = ev.body;
              eu_frame =
                Symexec.Fnames
                  (match ev.trigger with
                  | Ast.On_trigger_var (_, Some x) -> [ (x, input) ]
                  | _ -> []) })
          events
      in
      let ctx =
        Symexec.make_ctx ~host_builtins:(List.map fst stubs)
          ~funcs:
            (Symexec.Ifuncs
               (List.map
                  (fun (f : Ast.func_decl) -> (f.fname, f))
                  program.Ast.funcs))
          ~hooks:
            (List.map
               (fun (tr : Ast.trig_decl) -> (tr.tname, tr.ttyp))
               m.Ast.mtrigs)
          ()
      in
      let paths = Symexec.run_events ctx store eus ~binding:input in
      let unknown =
        List.exists
          (fun (p : Symexec.path) ->
            match p.outcome with Symexec.Unknown _ -> true | _ -> false)
          paths
      in
      if unknown then true
      else begin
        let v = trig_value td.Ast.ttyp ~round in
        let lookup n =
          if n = "input" then v
          else Host.fail "free symbolic variable %s" n
        in
        (* pc_sat deems an atom it cannot evaluate unsatisfied, so an
           opaque-guarded episode would look like "0 paths" — detect and
           skip those instead of failing *)
        let decidable =
          List.for_all
            (fun (p : Symexec.path) ->
              List.for_all
                (fun (t, _) ->
                  match Symexec.eval_sym lookup t with
                  | _ -> true
                  | exception _ -> false)
                p.Symexec.pc)
            paths
        in
        if not decidable then true
        else
          let sat =
            List.filter
              (fun (p : Symexec.path) -> Symexec.pc_sat lookup p.pc)
              paths
          in
            if List.length sat <> 1 then
              QCheck2.Test.fail_reportf
                "%s/%s trig %s round %d: %d of %d path conditions satisfied"
                e.name m.Ast.mname td.Ast.tname round (List.length sat)
                (List.length paths);
            let p = List.hd sat in
            log := [];
            let raised =
              try
                Interp.fire_trigger t td.Ast.tname v;
                false
              with Interp.Runtime_error _ -> true
            in
            let ctxs =
              Printf.sprintf "%s/%s trig %s round %d" e.name m.Ast.mname
                td.Ast.tname round
            in
            (match p.Symexec.outcome with
            | Symexec.Err _ | Symexec.Aviol _ ->
                if not raised then
                  QCheck2.Test.fail_reportf
                    "%s: symbolic path fails, interpreter succeeded" ctxs
            | Symexec.Unknown _ -> ()
            | Symexec.Running ->
                if raised then
                  QCheck2.Test.fail_reportf
                    "%s: interpreter raised, symbolic path runs" ctxs;
                let resolve_target () =
                  match p.Symexec.pending with
                  | None -> None
                  | Some (Symexec.Pconc (tgt, _)) -> Some tgt
                  | Some (Symexec.Psym (s, _)) -> (
                      try
                        Some (Value.to_string (Symexec.eval_sym lookup s))
                      with _ -> None)
                in
                (match resolve_target () with
                | Some tgt when tgt <> pre_state ->
                    (* the handler decided a transit: the first transit
                       the host saw must be exactly it (enter handlers
                       may chain further) *)
                    let expected =
                      Printf.sprintf "transit:%s->%s" pre_state tgt
                    in
                    let first_transit =
                      List.find_opt
                        (fun entry ->
                          String.length entry >= 8
                          && String.sub entry 0 8 = "transit:")
                        (List.rev !log)
                    in
                    if first_transit <> Some expected then
                      QCheck2.Test.fail_reportf
                        "%s: predicted %s, interpreter did %s" ctxs expected
                        (Option.value ~default:"no transit" first_transit)
                | _ ->
                    (* settled: state, stores and effects must agree *)
                    if Interp.current_state t <> pre_state then
                      QCheck2.Test.fail_reportf
                        "%s: no transit predicted but state moved %s -> %s"
                        ctxs pre_state (Interp.current_state t);
                    let check_var scope n peek =
                      match peek p.Symexec.store n with
                      | None -> ()
                      | Some s -> (
                          match
                            try Some (Symexec.eval_sym lookup s)
                            with _ -> None (* opaque host result *)
                          with
                          | None -> ()
                          | Some predicted ->
                              let actual =
                                Option.value ~default:Value.Unit
                                  (Interp.var t n)
                              in
                              if not (Value.equal predicted actual) then
                                QCheck2.Test.fail_reportf
                                  "%s: %s %s predicted %s, interpreter has \
                                   %s"
                                  ctxs scope n
                                  (Value.to_string predicted)
                                  (Value.to_string actual))
                    in
                    List.iter
                      (fun n -> check_var "global" n Symexec.peek_global)
                      gnames;
                    List.iter
                      (fun n -> check_var "local" n Symexec.peek_local)
                      lnames;
                    let predicted_effects =
                      try
                        Some
                          (List.filter_map
                             (fun (ef : Symexec.effect_) ->
                               match ef with
                               | Symexec.Ecall (f, _) when f <> "log" ->
                                   None (* host stub: no log entry *)
                               | Symexec.Ecall (_, [ a ]) ->
                                   Some
                                     ("log:"
                                     ^ Value.to_string
                                         (Symexec.eval_sym lookup a))
                               | Symexec.Ecall (_, _) -> Some "log:?"
                               | Symexec.Esend (tgt, pay) ->
                                   let tgt =
                                     match tgt with
                                     | Symexec.To_harvester -> "harvester"
                                     | Symexec.To_machine (mn, None) -> mn
                                     | Symexec.To_machine (mn, Some d) ->
                                         Printf.sprintf "%s@%d" mn
                                           (int_of_float
                                              (Value.as_num
                                                 (Symexec.eval_sym lookup d)))
                                   in
                                   Some
                                     (Printf.sprintf "send:%s:%s" tgt
                                        (Value.to_string
                                           (Symexec.eval_sym lookup pay)))
                               | Symexec.Etrig (n, _, s) ->
                                   Some
                                     (Printf.sprintf "settrig:%s:%s" n
                                        (Value.to_string
                                           (Symexec.eval_sym lookup s))))
                             (List.rev p.Symexec.effects))
                      with _ -> None
                    in
                    (match predicted_effects with
                    | None -> ()
                    | Some pe ->
                        let concrete = List.rev !log in
                        if pe <> concrete then
                          QCheck2.Test.fail_reportf
                            "%s: effects differ\n  predicted: %s\n  \
                             interpreter: %s"
                            ctxs (String.concat " | " pe)
                            (String.concat " | " concrete));
                    incr full_checks));
            true
      end
    end
  end

let prop_symbolic_soundness =
  QCheck2.Test.make
    ~name:"each concrete run satisfies exactly one symbolic path" ~count:150
    ~print:(fun (case, round, warmup) ->
      Printf.sprintf "case=%d round=%d warmup=%d" case round warmup)
    QCheck2.Gen.(triple (int_bound 1_000) (int_range 0 40) (int_bound 3))
    (fun (case, round, warmup) -> episode ~case ~round ~warmup)

let test_soundness_coverage () =
  (* the property must have fully compared settled episodes, not skipped
     its way to green *)
  if !full_checks < 20 then
    Alcotest.failf "only %d fully-checked episodes" !full_checks

let () =
  Alcotest.run "verify"
    [ ( "equiv",
        [ Alcotest.test_case "catalog verifies clean" `Quick
            test_catalog_clean;
          Alcotest.test_case "examples verify clean" `Quick
            test_examples_clean ] );
      ( "mutations",
        [ Alcotest.test_case "corrupted global init caught" `Quick
            test_mutated_global_init;
          Alcotest.test_case "corrupted binding slot caught" `Quick
            test_mutated_binding_slot;
          Alcotest.test_case "dropped dispatch event caught" `Quick
            test_dropped_dispatch_event ] );
      ( "fixtures",
        [ Alcotest.test_case "v402 path budget" `Quick test_v402_path_budget;
          Alcotest.test_case "v403 invariant witness" `Quick
            test_v403_invariant;
          Alcotest.test_case "v404 index range" `Quick test_v404_index_oob;
          Alcotest.test_case "fixtures have no V401" `Quick
            test_fixtures_no_divergence ] );
      ( "reach-lint",
        [ Alcotest.test_case "reach upgrades L101/L102" `Quick
            test_reach_upgrades_lint;
          Alcotest.test_case "reach-backed L107" `Quick test_reach_livelock;
          Alcotest.test_case "incomplete reach falls back" `Quick
            test_incomplete_reach_falls_back ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest [ prop_symbolic_soundness ]
        @ [ Alcotest.test_case "episodes fully checked" `Quick
              test_soundness_coverage ] ) ]
